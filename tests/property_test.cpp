// Property-based tests: long random sequences of VM operations (mmap,
// munmap, mprotect, fork, exit, writes, reads, sysctl, mlock, pagedaemon
// pressure) run against a flat reference model of every process's address
// space. After every read the observed byte must match the model; VM
// invariants are checked periodically. Parameterized over both systems and
// several seeds.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "src/harness/world.h"
#include "src/sim/rng.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

// Reference model of one page of one process's address space.
struct PageModel {
  std::byte value{0};
  bool writable = true;
};

// Per-process model: page-aligned va -> PageModel. COW semantics make each
// process's view independent for private anonymous memory, which is what
// the model captures; fork simply copies the map.
using ProcModel = std::map<sim::Vaddr, PageModel>;

struct ModelProc {
  kern::Proc* proc;
  ProcModel pages;
};

class PropertyTest : public ::testing::TestWithParam<std::tuple<VmKind, std::uint64_t>> {};

TEST_P(PropertyTest, RandomOpsMatchReferenceModel) {
  auto [kind, seed] = GetParam();
  WorldConfig cfg;
  cfg.ram_pages = 1024;  // 4 MB: small enough that paging happens naturally
  cfg.swap_slots = 16384;
  World w(kind, cfg);
  sim::Rng rng(seed);

  std::vector<ModelProc> procs;
  procs.push_back(ModelProc{w.kernel->Spawn(), {}});

  constexpr int kOps = 1200;
  constexpr std::size_t kMaxProcs = 6;

  auto random_mapped_page = [&](ModelProc& mp) -> std::optional<sim::Vaddr> {
    if (mp.pages.empty()) {
      return std::nullopt;
    }
    auto it = mp.pages.begin();
    std::advance(it, static_cast<long>(rng.Below(mp.pages.size())));
    return it->first;
  };

  for (int op = 0; op < kOps; ++op) {
    ModelProc& mp = procs[rng.Below(procs.size())];
    switch (rng.Below(12)) {
      case 0: {  // mmap a fresh anonymous region
        std::uint64_t npages = rng.Range(1, 16);
        sim::Vaddr addr = 0;
        int err = w.kernel->MmapAnon(mp.proc, &addr, npages * sim::kPageSize, kern::MapAttrs{});
        ASSERT_EQ(sim::kOk, err);
        for (std::uint64_t i = 0; i < npages; ++i) {
          mp.pages[addr + i * sim::kPageSize] = PageModel{};
        }
        break;
      }
      case 1: {  // munmap a random subrange
        auto va = random_mapped_page(mp);
        if (!va.has_value()) {
          break;
        }
        std::uint64_t npages = rng.Range(1, 4);
        ASSERT_EQ(sim::kOk, w.kernel->Munmap(mp.proc, *va, npages * sim::kPageSize));
        for (std::uint64_t i = 0; i < npages; ++i) {
          mp.pages.erase(*va + i * sim::kPageSize);
        }
        break;
      }
      case 2:
      case 3:
      case 4: {  // write one page
        auto va = random_mapped_page(mp);
        if (!va.has_value()) {
          break;
        }
        auto fill = static_cast<std::byte>(rng.Below(256));
        int err = w.kernel->TouchWrite(mp.proc, *va, 1, fill);
        PageModel& pg = mp.pages[*va];
        if (pg.writable) {
          ASSERT_EQ(sim::kOk, err) << "write to writable page failed";
          pg.value = fill;
        } else {
          ASSERT_EQ(sim::kErrProt, err) << "write to read-only page succeeded";
        }
        break;
      }
      case 5:
      case 6:
      case 7: {  // read-verify one page
        auto va = random_mapped_page(mp);
        if (!va.has_value()) {
          break;
        }
        std::vector<std::byte> b(1);
        ASSERT_EQ(sim::kOk, w.kernel->ReadMem(mp.proc, *va, b));
        ASSERT_EQ(mp.pages[*va].value, b[0]) << "mismatch at " << std::hex << *va;
        break;
      }
      case 8: {  // mprotect toggle
        auto va = random_mapped_page(mp);
        if (!va.has_value()) {
          break;
        }
        PageModel& pg = mp.pages[*va];
        sim::Prot prot = pg.writable ? sim::Prot::kRead : sim::Prot::kReadWrite;
        ASSERT_EQ(sim::kOk, w.kernel->Mprotect(mp.proc, *va, sim::kPageSize, prot));
        pg.writable = !pg.writable;
        break;
      }
      case 9: {  // fork
        if (procs.size() >= kMaxProcs) {
          break;
        }
        kern::Proc* child = w.kernel->Fork(mp.proc);
        procs.push_back(ModelProc{child, mp.pages});  // COW: child copies view
        break;
      }
      case 10: {  // exit (keep at least one process)
        if (procs.size() <= 1) {
          break;
        }
        std::size_t idx = rng.Below(procs.size());
        w.kernel->Exit(procs[idx].proc);
        procs.erase(procs.begin() + static_cast<long>(idx));
        break;
      }
      case 11: {  // kernel services and memory pressure
        auto va = random_mapped_page(mp);
        if (va.has_value() && mp.pages[*va].writable) {
          if (rng.Chance(1, 2)) {
            ASSERT_EQ(sim::kOk, w.kernel->Sysctl(mp.proc, *va, sim::kPageSize));
            mp.pages[*va].value = std::byte{0x5c};  // sysctl fills the buffer
          } else {
            ASSERT_EQ(sim::kOk, w.kernel->Mlock(mp.proc, *va, sim::kPageSize));
            ASSERT_EQ(sim::kOk, w.kernel->Munlock(mp.proc, *va, sim::kPageSize));
          }
        }
        if (rng.Chance(1, 4)) {
          w.vm->PageDaemon(w.pm.free_pages() + rng.Range(8, 64));
        }
        break;
      }
    }
    if (op % 100 == 99) {
      w.vm->CheckInvariants();
    }
  }

  // Final sweep: every mapped page of every process must match the model.
  for (ModelProc& mp : procs) {
    for (const auto& [va, pg] : mp.pages) {
      std::vector<std::byte> b(1);
      ASSERT_EQ(sim::kOk, w.kernel->ReadMem(mp.proc, va, b));
      ASSERT_EQ(pg.value, b[0]) << "final sweep mismatch at " << std::hex << va;
    }
  }
  w.vm->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PropertyTest,
    ::testing::Combine(::testing::Values(VmKind::kBsd, VmKind::kUvm),
                       ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull)),
    [](const ::testing::TestParamInfo<std::tuple<VmKind, std::uint64_t>>& param_info) {
      return std::string(harness::VmKindName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// A second property: the same op stream must leave BOTH systems with
// byte-identical user-visible memory (they implement the same semantics).
TEST(CrossSystemEquivalenceTest, SameOpsSameVisibleMemory) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    WorldConfig cfg;
    cfg.ram_pages = 512;
    World wb(VmKind::kBsd, cfg);
    World wu(VmKind::kUvm, cfg);
    sim::Rng rng(seed);

    struct Pair {
      kern::Proc* b;
      kern::Proc* u;
      std::vector<sim::Vaddr> pages;
    };
    std::vector<Pair> procs;
    procs.push_back(Pair{wb.kernel->Spawn(), wu.kernel->Spawn(), {}});

    for (int op = 0; op < 600; ++op) {
      Pair& pr = procs[rng.Below(procs.size())];
      switch (rng.Below(8)) {
        case 0: {
          std::uint64_t npages = rng.Range(1, 8);
          sim::Vaddr ab = 0;
          sim::Vaddr au = 0;
          ASSERT_EQ(sim::kOk,
                    wb.kernel->MmapAnon(pr.b, &ab, npages * sim::kPageSize, kern::MapAttrs{}));
          ASSERT_EQ(sim::kOk,
                    wu.kernel->MmapAnon(pr.u, &au, npages * sim::kPageSize, kern::MapAttrs{}));
          ASSERT_EQ(ab, au) << "address allocation diverged";
          for (std::uint64_t i = 0; i < npages; ++i) {
            pr.pages.push_back(ab + i * sim::kPageSize);
          }
          break;
        }
        case 1:
        case 2:
        case 3: {
          if (pr.pages.empty()) {
            break;
          }
          sim::Vaddr va = pr.pages[rng.Below(pr.pages.size())];
          auto fill = static_cast<std::byte>(rng.Below(256));
          ASSERT_EQ(wb.kernel->TouchWrite(pr.b, va, 1, fill),
                    wu.kernel->TouchWrite(pr.u, va, 1, fill));
          break;
        }
        case 4:
        case 5: {
          if (pr.pages.empty()) {
            break;
          }
          sim::Vaddr va = pr.pages[rng.Below(pr.pages.size())];
          std::vector<std::byte> bb(1);
          std::vector<std::byte> bu(1);
          int eb = wb.kernel->ReadMem(pr.b, va, bb);
          int eu = wu.kernel->ReadMem(pr.u, va, bu);
          ASSERT_EQ(eb, eu);
          if (eb == sim::kOk) {
            ASSERT_EQ(bb[0], bu[0]) << "divergence at " << std::hex << va;
          }
          break;
        }
        case 6: {
          if (procs.size() >= 5) {
            break;
          }
          procs.push_back(Pair{wb.kernel->Fork(pr.b), wu.kernel->Fork(pr.u), pr.pages});
          break;
        }
        case 7: {
          wb.vm->PageDaemon(wb.pm.free_pages() + 16);
          wu.vm->PageDaemon(wu.pm.free_pages() + 16);
          break;
        }
      }
    }
    // Full final comparison.
    for (Pair& pr : procs) {
      for (sim::Vaddr va : pr.pages) {
        std::vector<std::byte> bb(1);
        std::vector<std::byte> bu(1);
        int eb = wb.kernel->ReadMem(pr.b, va, bb);
        int eu = wu.kernel->ReadMem(pr.u, va, bu);
        ASSERT_EQ(eb, eu);
        if (eb == sim::kOk) {
          ASSERT_EQ(bb[0], bu[0]);
        }
      }
    }
    wb.vm->CheckInvariants();
    wu.vm->CheckInvariants();
  }
}

}  // namespace
