// Direct unit tests of the two map structures (bsdvm::VmMap and
// uvm::UvmMap): sorted insertion, lookup, space search, clip arithmetic
// (including amap slot offsets), lock metering, and the fixed entry pool.
#include <gtest/gtest.h>

#include "src/bsdvm/vm_map.h"
#include "src/core/uvm_map.h"
#include "src/sim/machine.h"

namespace {

constexpr sim::Vaddr kMin = 0x1000;
constexpr sim::Vaddr kMax = 0x100000;

// --- bsdvm::VmMap ---

class BsdMapStructTest : public ::testing::Test {
 protected:
  sim::Machine machine;
  bsdvm::VmMap map{machine, kMin, kMax, 0};

  bsdvm::MapEntry Entry(sim::Vaddr start, sim::Vaddr end) {
    bsdvm::MapEntry e;
    e.start = start;
    e.end = end;
    return e;
  }
};

TEST_F(BsdMapStructTest, InsertKeepsSortedOrder) {
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x5000, 0x6000)));
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x2000, 0x3000)));
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x8000, 0x9000)));
  sim::Vaddr prev = 0;
  for (const auto& e : map.entries()) {
    EXPECT_GT(e.start, prev);
    prev = e.start;
  }
  EXPECT_EQ(3u, map.entry_count());
}

TEST_F(BsdMapStructTest, LookupFindsContainingEntry) {
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x2000, 0x4000)));
  auto it = map.LookupEntry(0x3abc);
  ASSERT_NE(map.entries().end(), it);
  EXPECT_EQ(0x2000u, it->start);
  EXPECT_EQ(map.entries().end(), map.LookupEntry(0x4000));  // end is exclusive
  EXPECT_EQ(map.entries().end(), map.LookupEntry(0x1fff));
}

TEST_F(BsdMapStructTest, FindSpaceSkipsEntriesAndHonorsBounds) {
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(kMin, kMin + 0x3000)));
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, map.FindSpace(&addr, 0x1000));
  EXPECT_EQ(kMin + 0x3000, addr);
  // A request larger than the remaining space fails.
  sim::Vaddr big = 0;
  EXPECT_EQ(sim::kErrNoMem, map.FindSpace(&big, kMax));
}

TEST_F(BsdMapStructTest, FindSpaceFillsGapBetweenEntries) {
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x2000, 0x3000)));
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x5000, 0x6000)));
  sim::Vaddr addr = 0x2000;
  ASSERT_EQ(sim::kOk, map.FindSpace(&addr, 0x2000));
  EXPECT_EQ(0x3000u, addr);  // the 2-page gap fits
}

TEST_F(BsdMapStructTest, ClipStartSplitsAndAdjustsOffsets) {
  bsdvm::MapEntry e = Entry(0x2000, 0x6000);
  e.pgoffset = 10;
  ASSERT_EQ(sim::kOk, map.InsertEntry(e));
  auto it = map.LookupEntry(0x2000);
  auto tail = map.ClipStart(it, 0x4000);
  EXPECT_EQ(2u, map.entry_count());
  EXPECT_EQ(0x4000u, tail->start);
  EXPECT_EQ(0x6000u, tail->end);
  EXPECT_EQ(12u, tail->pgoffset);  // 2 pages in
  auto head = map.LookupEntry(0x2000);
  EXPECT_EQ(0x4000u, head->end);
  EXPECT_EQ(10u, head->pgoffset);
}

TEST_F(BsdMapStructTest, ClipEndSplitsAndAdjustsOffsets) {
  bsdvm::MapEntry e = Entry(0x2000, 0x6000);
  e.pgoffset = 4;
  ASSERT_EQ(sim::kOk, map.InsertEntry(e));
  auto it = map.LookupEntry(0x2000);
  map.ClipEnd(it, 0x3000);
  EXPECT_EQ(2u, map.entry_count());
  EXPECT_EQ(0x3000u, it->end);
  auto back = map.LookupEntry(0x3000);
  ASSERT_NE(map.entries().end(), back);
  EXPECT_EQ(5u, back->pgoffset);
  EXPECT_EQ(0x6000u, back->end);
}

TEST_F(BsdMapStructTest, EntryPoolLimitEnforced) {
  bsdvm::VmMap limited(machine, kMin, kMax, 2);
  ASSERT_EQ(sim::kOk, limited.InsertEntry(Entry(0x2000, 0x3000)));
  ASSERT_EQ(sim::kOk, limited.InsertEntry(Entry(0x4000, 0x5000)));
  EXPECT_EQ(sim::kErrMapEntryPool, limited.InsertEntry(Entry(0x6000, 0x7000)));
}

TEST_F(BsdMapStructTest, ClipReservationRefusesUpFrontWhenPoolCannotCoverClips) {
  // Pool of 3, 2 in use: a range op that may clip both boundaries needs
  // worst-case 2 fresh entries. The reservation must refuse *before*
  // anything is mutated — mid-clip exhaustion would be fatal.
  bsdvm::VmMap limited(machine, kMin, kMax, 3);
  ASSERT_EQ(sim::kOk, limited.InsertEntry(Entry(0x2000, 0x8000)));
  ASSERT_EQ(sim::kOk, limited.InsertEntry(Entry(0x9000, 0xa000)));
  EXPECT_TRUE(limited.RangeNeedsClip(0x3000, 0x7000));
  bsdvm::VmMap::ClipReservation res;
  EXPECT_EQ(sim::kErrMapEntryPool, res.Acquire(limited, 0x3000, 0x7000));
  EXPECT_EQ(1u, machine.stats().map_entry_pool_denials);
  EXPECT_EQ(2u, limited.entry_count());  // untouched
  EXPECT_EQ(0u, limited.reserved_entries());
  EXPECT_TRUE(limited.IndexConsistent());
  // A range op needing no clip still succeeds against the same pool.
  EXPECT_FALSE(limited.RangeNeedsClip(0x2000, 0x8000));
  bsdvm::VmMap::ClipReservation aligned;
  EXPECT_EQ(sim::kOk, aligned.Acquire(limited, 0x2000, 0x8000));
}

TEST_F(BsdMapStructTest, ClipReservationHoldsHeadroomWithoutConsumingEntries) {
  bsdvm::VmMap limited(machine, kMin, kMax, 4);
  ASSERT_EQ(sim::kOk, limited.InsertEntry(Entry(0x2000, 0x8000)));
  ASSERT_EQ(sim::kOk, limited.InsertEntry(Entry(0x9000, 0xa000)));
  {
    bsdvm::VmMap::ClipReservation res;
    ASSERT_EQ(sim::kOk, res.Acquire(limited, 0x3000, 0x7000));
    EXPECT_EQ(2u, limited.reserved_entries());
    // The reserved headroom is invisible to the clips it guards but blocks
    // ordinary inserts from stealing it.
    EXPECT_EQ(sim::kErrMapEntryPool, limited.InsertEntry(Entry(0xb000, 0xc000)));
    auto it = limited.LookupEntry(0x3000);
    ASSERT_NE(limited.entries().end(), it);
    it = limited.ClipStart(it, 0x3000);
    limited.ClipEnd(it, 0x7000);
    EXPECT_EQ(4u, limited.entry_count());
    EXPECT_TRUE(limited.IndexConsistent());
  }
  EXPECT_EQ(0u, limited.reserved_entries());  // released with the guard
  // The pool is now genuinely full.
  EXPECT_EQ(sim::kErrMapEntryPool, limited.InsertEntry(Entry(0xb000, 0xc000)));
}

TEST_F(BsdMapStructTest, LockMeteringAccumulatesHoldTime) {
  std::uint64_t acq = machine.stats().map_lock_acquisitions;
  map.Lock();
  machine.Charge(1000);
  map.Unlock();
  EXPECT_EQ(acq + 1, machine.stats().map_lock_acquisitions);
  EXPECT_GE(machine.stats().map_lock_hold_ns, 1000u);
}

TEST_F(BsdMapStructTest, NestedLockPanics) {
  // The map lock is a real capability now, not a recursion counter: code
  // that faults while holding the map lock must use the *WithMapLocked
  // entry points instead of re-locking.
  std::uint64_t acq = machine.stats().map_lock_acquisitions;
  map.Lock();
  EXPECT_TRUE(map.IsLocked());
  EXPECT_DEATH(map.Lock(), "re-entrant acquire of lock map");
  map.Unlock();
  EXPECT_FALSE(map.IsLocked());
  EXPECT_EQ(acq + 1, machine.stats().map_lock_acquisitions);
}

TEST_F(BsdMapStructTest, RangeFreeChecksOverlapAndBounds) {
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x4000, 0x6000)));
  EXPECT_TRUE(map.RangeFree(0x2000, 0x2000));
  EXPECT_FALSE(map.RangeFree(0x3000, 0x2000));  // overlaps head
  EXPECT_FALSE(map.RangeFree(0x5000, 0x1000));  // inside
  EXPECT_TRUE(map.RangeFree(0x6000, 0x1000));   // adjacent after
  EXPECT_FALSE(map.RangeFree(0x0, 0x1000));     // below min
  EXPECT_FALSE(map.RangeFree(kMax, 0x1000));    // above max
}

TEST_F(BsdMapStructTest, LookupChargesPerEntryScanned) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(sim::kOk,
              map.InsertEntry(Entry(0x2000 + i * 0x2000, 0x3000 + i * 0x2000)));
  }
  sim::Nanoseconds t0 = machine.clock().now();
  map.LookupEntry(0x2000);
  sim::Nanoseconds first = machine.clock().now() - t0;
  t0 = machine.clock().now();
  map.LookupEntry(0x2000 + 7 * 0x2000);
  sim::Nanoseconds last = machine.clock().now() - t0;
  EXPECT_GT(last, first);  // deeper entries cost more to find (§3.2)
}

// --- uvm::UvmMap ---

class UvmMapStructTest : public ::testing::Test {
 protected:
  sim::Machine machine;
  uvm::UvmMap map{machine, kMin, kMax, 0};

  uvm::UvmMapEntry Entry(sim::Vaddr start, sim::Vaddr end) {
    uvm::UvmMapEntry e;
    e.start = start;
    e.end = end;
    return e;
  }
};

TEST_F(UvmMapStructTest, ClipAdjustsBothLayerOffsets) {
  uvm::UvmMapEntry e = Entry(0x2000, 0x8000);
  e.uobj_pgoffset = 100;
  e.amap_slotoff = 7;
  ASSERT_EQ(sim::kOk, map.InsertEntry(e));
  auto it = map.LookupEntry(0x2000);
  auto tail = map.ClipStart(it, 0x5000);
  EXPECT_EQ(103u, tail->uobj_pgoffset);
  EXPECT_EQ(10u, tail->amap_slotoff);
  map.ClipEnd(tail, 0x6000);
  auto last = map.LookupEntry(0x6000);
  ASSERT_NE(map.entries().end(), last);
  EXPECT_EQ(104u, last->uobj_pgoffset);
  EXPECT_EQ(11u, last->amap_slotoff);
  EXPECT_EQ(3u, map.entry_count());
}

TEST_F(UvmMapStructTest, SlotAndIndexHelpers) {
  uvm::UvmMapEntry e = Entry(0x4000, 0x8000);
  e.amap_slotoff = 3;
  e.uobj_pgoffset = 20;
  EXPECT_EQ(0u, e.EntryIndexOf(0x4000));
  EXPECT_EQ(2u, e.EntryIndexOf(0x6000));
  EXPECT_EQ(5u, e.SlotOf(0x6000));
  EXPECT_EQ(22u, e.ObjIndexOf(0x6000));
  EXPECT_EQ(4u, e.npages());
}

TEST_F(UvmMapStructTest, InsertRejectsOverlapViaAssertionFreePath) {
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x4000, 0x6000)));
  EXPECT_FALSE(map.RangeFree(0x5000, 0x2000));
  sim::Vaddr addr = 0x4000;
  ASSERT_EQ(sim::kOk, map.FindSpace(&addr, 0x1000));
  EXPECT_EQ(0x6000u, addr);
}

TEST_F(UvmMapStructTest, EraseReleasesEntries) {
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x2000, 0x3000)));
  ASSERT_EQ(sim::kOk, map.InsertEntry(Entry(0x3000, 0x4000)));
  auto it = map.LookupEntry(0x2000);
  map.EraseEntry(it);
  EXPECT_EQ(1u, map.entry_count());
  EXPECT_EQ(map.entries().end(), map.LookupEntry(0x2000));
  EXPECT_NE(map.entries().end(), map.LookupEntry(0x3000));
}

TEST_F(UvmMapStructTest, EntryPoolLimitEnforced) {
  uvm::UvmMap limited(machine, kMin, kMax, 1);
  ASSERT_EQ(sim::kOk, limited.InsertEntry(Entry(0x2000, 0x3000)));
  EXPECT_EQ(sim::kErrMapEntryPool, limited.InsertEntry(Entry(0x4000, 0x5000)));
}

}  // namespace
