// The lock-discipline capability layer (src/sim/lock.h, DESIGN.md §15):
// charge semantics, per-lock and aggregate counters, the runtime rank
// validator's panics, LockToken witnesses, registry retirement, the frame
// generation tag behind FrameIsCurrent, and whole-fleet lock attribution
// (every registered lock class is exercised; double runs are identical).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/world.h"
#include "src/kern/fleet.h"
#include "src/sim/lock.h"
#include "src/sim/machine.h"

namespace {

using harness::VmKind;
using harness::World;

TEST(LockTest, AcquireChargesTheConfiguredCost) {
  sim::Machine m;
  const sim::Nanoseconds cost = 123;
  sim::SimLock lock(m, "t.costed", sim::LockRank::kMap, &cost);
  {
    sim::LockGuard g(lock);
    EXPECT_EQ(123u, m.clock().now());
    EXPECT_TRUE(lock.IsHeld());
  }
  EXPECT_FALSE(lock.IsHeld());
  EXPECT_EQ(1u, lock.acquisitions());
  EXPECT_EQ(1u, m.stats().lock_acquisitions);
}

TEST(LockTest, ZeroCostLockNeverTouchesTheClock) {
  sim::Machine m;
  sim::SimLock lock(m, "t.free", sim::LockRank::kPageQueue);
  sim::LockGuard g(lock);
  EXPECT_EQ(0u, m.clock().now());
  // No charge was issued at all: a zero-ns Charge() would still perturb the
  // printed CostBreakdown charge counts.
  EXPECT_EQ(0u, m.breakdown().charges_of(sim::CostCat::kLock));
}

TEST(LockTest, HoldTimeIsVirtualTimeUnderTheLock) {
  sim::Machine m;
  sim::SimLock lock(m, "t.hold", sim::LockRank::kObject);
  lock.Acquire();
  m.Charge(500);
  lock.Release();
  EXPECT_EQ(500u, lock.hold_ns());
  EXPECT_EQ(500u, m.stats().lock_hold_ns);
}

TEST(LockTest, MapRankMirrorsLegacyCounters) {
  sim::Machine m;
  sim::SimLock lock(m, "t.map", sim::LockRank::kMap);
  lock.Acquire();
  m.Charge(77);
  lock.Release();
  EXPECT_EQ(1u, m.stats().map_lock_acquisitions);
  EXPECT_EQ(77u, m.stats().map_lock_hold_ns);
}

TEST(LockTest, DescendingAndEqualRankNestingIsLegal) {
  sim::Machine m;
  sim::SimLock map_a(m, "t.map_a", sim::LockRank::kMap);
  sim::SimLock map_b(m, "t.map_b", sim::LockRank::kMap);
  sim::SimLock obj(m, "t.obj", sim::LockRank::kObject);
  sim::SimLock swap(m, "t.swap", sim::LockRank::kSwap);
  sim::LockGuard g1(map_a);
  sim::LockGuard g2(map_b);  // equal rank: the two-map extract/fork case
  sim::LockGuard g3(obj);
  sim::LockGuard g4(swap);
  EXPECT_EQ(4u, m.locks().held().size());
}

TEST(LockTest, NonLifoReleaseIsLegal) {
  sim::Machine m;
  sim::SimLock map(m, "t.map", sim::LockRank::kMap);
  sim::SimLock obj(m, "t.obj", sim::LockRank::kObject);
  map.Acquire();
  obj.Acquire();
  map.Release();  // error paths may drop the map before the object lock
  EXPECT_TRUE(obj.IsHeld());
  obj.Release();
  EXPECT_TRUE(m.locks().held().empty());
}

TEST(LockTest, TokenWitnessesAHeldLock) {
  sim::Machine m;
  sim::SimLock lock(m, "t.tok", sim::LockRank::kPageQueue);
  sim::LockGuard g(lock);
  sim::LockToken token(lock);
  EXPECT_EQ(&lock, &token.lock());
}

TEST(LockTest, RetiredTotalsSurviveTheLockObject) {
  sim::Machine m;
  {
    sim::SimLock lock(m, "t.transient", sim::LockRank::kMap);
    lock.Acquire();
    m.Charge(40);
    lock.Release();
  }
  // Per-address-space map locks die with their process; the per-class
  // totals must not.
  bool found = false;
  for (const sim::LockClassTotals& t : sim::LockTable(m.locks())) {
    if (std::string(t.name) == "t.transient") {
      found = true;
      EXPECT_EQ(1u, t.locks);
      EXPECT_EQ(1u, t.acquisitions);
      EXPECT_EQ(40u, t.hold_ns);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LockDeathTest, ReentrantAcquirePanics) {
  sim::Machine m;
  sim::SimLock lock(m, "t.reent", sim::LockRank::kMap);
  lock.Acquire();
  EXPECT_DEATH(lock.Acquire(), "re-entrant acquire of lock t.reent");
  lock.Release();
}

TEST(LockDeathTest, RankOrderViolationPanics) {
  sim::Machine m;
  sim::SimLock pmap(m, "t.pmap", sim::LockRank::kPmap);
  sim::SimLock map(m, "t.map", sim::LockRank::kMap);
  pmap.Acquire();
  EXPECT_DEATH(
      map.Acquire(),
      "lock rank violation: acquiring t.map \\(rank map\\) while holding t.pmap \\(rank pmap\\)");
  pmap.Release();
}

// Regression for the held-stack validator hole: rank order must be checked
// against the *maximum* rank over all held locks. PopHeld permits non-LIFO
// release, so after map -> object -> release(map) the back of the held
// stack is not necessarily the max-rank lock; a validator that only looked
// at the innermost entry could let a second map acquire slip under the
// still-held object lock.
TEST(LockDeathTest, RankCheckedAgainstAllHeldLocksAfterNonLifoRelease) {
  sim::Machine m;
  sim::SimLock map_a(m, "t.map_a", sim::LockRank::kMap);
  sim::SimLock obj(m, "t.obj", sim::LockRank::kObject);
  sim::SimLock map_b(m, "t.map_b", sim::LockRank::kMap);
  map_a.Acquire();
  obj.Acquire();
  map_a.Release();  // non-LIFO: the object lock stays held
  EXPECT_DEATH(
      map_b.Acquire(),
      "lock rank violation: acquiring t.map_b \\(rank map\\) while holding t.obj \\(rank object\\)");
  obj.Release();
}

TEST(LockDeathTest, TokenOverUnheldLockAsserts) {
  sim::Machine m;
  sim::SimLock lock(m, "t.unheld", sim::LockRank::kMap);
  EXPECT_DEATH(sim::LockToken token(lock), "LockToken over a lock that is not held");
}

TEST(LockDeathTest, UnbalancedReleaseAsserts) {
  sim::Machine m;
  sim::SimLock lock(m, "t.unbal", sim::LockRank::kMap);
  EXPECT_DEATH(lock.Release(), "release of a lock that is not held");
}

// The generation tag behind the stale-page protocol: freeing a frame (here
// via its owning object) retires the identity a raw Page* captured before a
// blocking allocation, and FrameIsCurrent — under the queue lock — says so.
TEST(FrameGenerationTest, FreeingAFrameRetiresItsGeneration) {
  World w(VmKind::kUvm);
  phys::Page* p = w.pm.AllocPage(phys::OwnerKind::kKernel, &w, 0, /*zero=*/false);
  ASSERT_NE(nullptr, p);
  const std::uint32_t gen = p->gen;
  {
    sim::LockGuard q(w.pm.queue_lock());
    EXPECT_TRUE(w.pm.FrameIsCurrent(sim::LockToken(w.pm.queue_lock()), p, gen));
  }
  w.pm.FreePage(p);
  {
    sim::LockGuard q(w.pm.queue_lock());
    EXPECT_FALSE(w.pm.FrameIsCurrent(sim::LockToken(w.pm.queue_lock()), p, gen));
  }
}

// Completeness: a fleet workload under memory pressure must touch every
// registered lock class — a class with zero acquisitions would mean some
// charge site escaped the capability layer. RAM is sized down so the
// pagedaemon actually pushes to swap, and one boot-entry reservation
// exercises the kernel map (UVM's kmap is otherwise only a pressure path).
TEST(LockTableTest, FleetTouchesEveryLockClass) {
  for (VmKind kind : {VmKind::kBsd, VmKind::kUvm}) {
    World w(kind);
    // Shrink RAM under the running fleet (the CI gate's pressure shape) so
    // the pagedaemon must push anonymous pages to swap.
    w.InstallPressurePlan("@1ms phys-=7600");
    w.kernel->ReserveKernelBootEntries(1);
    kern::FleetConfig cfg;
    cfg.target_ops = 20000;
    kern::FleetWorkload fleet(*w.kernel, cfg);
    fleet.Run();
    const std::vector<sim::LockClassTotals> table = sim::LockTable(w.machine.locks());
    EXPECT_FALSE(table.empty());
    for (const sim::LockClassTotals& t : table) {
      EXPECT_GT(t.acquisitions, 0u)
          << "lock class '" << t.name << "' was never acquired on "
          << (kind == VmKind::kBsd ? "bsdvm" : "uvm");
    }
  }
}

TEST(LockDeterminismTest, FleetLockCountersAreIdenticalAcrossRuns) {
  for (VmKind kind : {VmKind::kBsd, VmKind::kUvm}) {
    std::vector<std::string> fp;
    for (int run = 0; run < 2; ++run) {
      World w(kind);
      kern::FleetConfig cfg;
      cfg.target_ops = 20000;
      kern::FleetWorkload fleet(*w.kernel, cfg);
      fleet.Run();
      std::vector<std::string> cur;
      for (const sim::LockClassTotals& t : sim::LockTable(w.machine.locks())) {
        cur.push_back(std::string(t.name) + ":" + std::to_string(t.locks) + ":" +
                      std::to_string(t.acquisitions) + ":" + std::to_string(t.hold_ns));
      }
      if (run == 0) {
        fp = cur;
      } else {
        EXPECT_EQ(fp, cur) << "per-lock counters diverged on "
                           << (kind == VmKind::kBsd ? "bsdvm" : "uvm");
      }
    }
  }
}

}  // namespace
