// The resource-pressure engine (DESIGN.md §12): pressure-plan parsing,
// scripted phys/swap ballooning through the engine, graceful pool-
// exhaustion recovery on the fault path, and the deterministic out-of-swap
// killer. The killer scenarios run on both VM systems and are checked for
// policy (largest anonymous RSS dies, ties keep the lowest pid) and for
// bit-exact reproducibility across runs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/harness/dump.h"
#include "src/harness/world.h"
#include "src/phys/phys_mem.h"
#include "src/sim/pressure.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

// --- Plan parsing ---

TEST(PressurePlanTest, ParsesEventsWithUnitsAndOps) {
  sim::PressurePlan plan;
  std::string error;
  ASSERT_TRUE(sim::ParsePressurePlan(
      "@5us swap-=1; @2ms phys+=2 ;@1s swap=3;@7 phys-=4;", &plan, &error))
      << error;
  ASSERT_EQ(4u, plan.events.size());
  EXPECT_EQ(5'000, plan.events[0].at);
  EXPECT_EQ(sim::PressureResource::kSwapSlots, plan.events[0].res);
  EXPECT_EQ(sim::PressureOp::kShrink, plan.events[0].op);
  EXPECT_EQ(1u, plan.events[0].amount);
  EXPECT_EQ(2'000'000, plan.events[1].at);
  EXPECT_EQ(sim::PressureResource::kPhysPages, plan.events[1].res);
  EXPECT_EQ(sim::PressureOp::kGrow, plan.events[1].op);
  EXPECT_EQ(1'000'000'000, plan.events[2].at);
  EXPECT_EQ(sim::PressureOp::kSetAvail, plan.events[2].op);
  EXPECT_EQ(3u, plan.events[2].amount);
  EXPECT_EQ(7, plan.events[3].at);  // no suffix = nanoseconds
}

TEST(PressurePlanTest, EmptyAndBlankSpecsParseToNoEvents) {
  sim::PressurePlan plan;
  std::string error;
  ASSERT_TRUE(sim::ParsePressurePlan("", &plan, &error));
  EXPECT_TRUE(plan.empty());
  ASSERT_TRUE(sim::ParsePressurePlan(" ; ;; ", &plan, &error));
  EXPECT_TRUE(plan.empty());
}

TEST(PressurePlanTest, MalformedSpecsAreRejectedWithAMessage) {
  const char* bad[] = {
      "1ms phys-=4",       // missing '@'
      "@ms phys-=4",       // no digits in the time
      "@1ms disk-=4",      // unknown resource
      "@1ms phys*=4",      // unknown operator
      "@1ms phys-=",       // missing amount
      "@1ms phys-=4 oops", // trailing junk
  };
  for (const char* spec : bad) {
    sim::PressurePlan plan;
    std::string error;
    EXPECT_FALSE(sim::ParsePressurePlan(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// --- Engine + actuators ---

TEST(PressureEngineTest, PlanEventsBalloonPhysAndSwapThroughPoll) {
  sim::Machine machine;
  phys::PhysMem pm(machine, 64);
  swp::SwapDevice sd(machine, 32);
  sim::PressurePlan plan;
  std::string error;
  ASSERT_TRUE(sim::ParsePressurePlan("@0 phys-=16; @0 swap-=8", &plan, &error));
  machine.pressure().SetPlan(plan);
  EXPECT_TRUE(machine.pressure().has_plan());
  EXPECT_EQ(2u, machine.pressure().pending_events());
  // The hot paths poll: the first allocation applies every due event.
  phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, &pm, 0, false);
  ASSERT_NE(nullptr, p);
  EXPECT_EQ(2u, machine.stats().pressure_events);
  EXPECT_EQ(16u, pm.balloon_pages());
  EXPECT_EQ(8u, sd.balloon_slots());
  EXPECT_EQ(64u - 16u - 1u, pm.free_pages());
  EXPECT_EQ(32u - 8u, sd.free_slots());
  pm.FreePage(p);
}

TEST(PressureEngineTest, SetAvailClampsInServiceAmount) {
  sim::Machine machine;
  phys::PhysMem pm(machine, 64);
  swp::SwapDevice sd(machine, 32);
  sim::PressurePlan plan;
  std::string error;
  ASSERT_TRUE(sim::ParsePressurePlan("@0 swap=5", &plan, &error));
  machine.pressure().SetPlan(plan);
  (void)sd.AllocSlot();
  EXPECT_EQ(32u - 5u, sd.balloon_slots());
  EXPECT_EQ(4u, sd.free_slots());  // 5 in service, 1 already allocated
}

// --- Worlds under a plan ---

TEST(PressureWorldTest, InstallingAPlanArmsDefaultsAndApplies) {
  WorldConfig cfg;
  cfg.ram_pages = 256;
  cfg.swap_slots = 256;
  cfg.pressure_plan = "@0ns phys-=64; @10ns phys+=32";
  World w(VmKind::kUvm, cfg);
  EXPECT_TRUE(w.kernel->oom_killer());
  EXPECT_GT(w.pm.free_reserve(), 0u);
  EXPECT_GT(w.pm.free_min(), 0u);
  EXPECT_GT(w.swap.reserved_slots(), 0u);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, 16 * sim::kPageSize, kern::MapAttrs{}));
  ASSERT_EQ(sim::kOk, w.kernel->TouchWrite(p, addr, 16 * sim::kPageSize, std::byte{0x42}));
  EXPECT_EQ(2u, w.machine.stats().pressure_events);
  EXPECT_EQ(32u, w.pm.balloon_pages());
}

// --- Out-of-swap killer ---

// Everything compared between two runs of the same scenario.
struct PressureOutcome {
  std::vector<int> dead_pids;
  std::uint64_t oom_kills = 0;
  std::uint64_t oom_pages_reclaimed = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t swap_full_events = 0;
  std::uint64_t page_alloc_failures = 0;
  std::uint64_t emergency_page_allocs = 0;
  sim::Nanoseconds virtual_ns = 0;
  std::string report;

  bool operator==(const PressureOutcome&) const = default;
};

WorldConfig PressureConfig(std::size_t ram_pages, std::size_t swap_slots) {
  WorldConfig cfg;
  cfg.ram_pages = ram_pages;
  cfg.swap_slots = swap_slots;
  // The reserve must sit strictly below the daemon's free target
  // (ram/20 + 4), or the daemon stops reclaiming exactly where normal
  // allocations still fail.
  cfg.free_reserve_pages = 4;
  cfg.free_min_pages = 2;
  cfg.swap_reserve_slots = 2;
  return cfg;
}

// Spawn a process with `npages` of touched (resident) anonymous memory,
// mlocked so the pagedaemon cannot shrink its RSS out from under the
// victim-selection assertions.
kern::Proc* SpawnResident(World& w, std::size_t npages) {
  kern::Proc* p = w.kernel->Spawn();
  EXPECT_NE(nullptr, p);
  sim::Vaddr addr = 0;
  EXPECT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, npages * sim::kPageSize, kern::MapAttrs{}));
  EXPECT_EQ(sim::kOk, w.kernel->TouchWrite(p, addr, npages * sim::kPageSize, std::byte{0x5a}));
  EXPECT_EQ(sim::kOk, w.kernel->Mlock(p, addr, npages * sim::kPageSize));
  return p;
}

PressureOutcome Collect(World& w, std::initializer_list<kern::Proc*> procs) {
  PressureOutcome out;
  for (kern::Proc* p : procs) {
    if (!p->alive) {
      out.dead_pids.push_back(p->pid);
    }
  }
  const sim::Stats& s = w.machine.stats();
  out.oom_kills = s.oom_kills;
  out.oom_pages_reclaimed = s.oom_pages_reclaimed;
  out.fault_retries = s.fault_retries;
  out.swap_full_events = s.swap_full_events;
  out.page_alloc_failures = s.page_alloc_failures;
  out.emergency_page_allocs = s.emergency_page_allocs;
  out.virtual_ns = w.machine.clock().now();
  std::ostringstream os;
  kern::DumpPressureStats(os, w.machine);
  out.report = os.str();
  return out;
}

class PressureTest : public ::testing::TestWithParam<VmKind> {};

// A small driver process keeps demanding fresh anonymous pages until
// physical memory and swap are both exhausted. The killer must pick the
// process with the largest anonymous RSS — not the faulter, not the first
// spawned — and the driver's fault then completes.
PressureOutcome RunLargestRssScenario(VmKind kind) {
  World w(kind, PressureConfig(/*ram_pages=*/96, /*swap_slots=*/16));
  w.kernel->set_oom_killer(true);
  kern::Proc* driver = w.kernel->Spawn();
  kern::Proc* big = SpawnResident(w, 48);
  kern::Proc* small = SpawnResident(w, 8);
  EXPECT_GT(w.vm->AnonResidentPages(*big->as), w.vm->AnonResidentPages(*small->as));

  sim::Vaddr addr = 0;
  EXPECT_EQ(sim::kOk, w.kernel->MmapAnon(driver, &addr, 64 * sim::kPageSize, kern::MapAttrs{}));
  for (int i = 0; i < 64 && big->alive; ++i) {
    EXPECT_EQ(sim::kOk,
              w.kernel->TouchWrite(driver, addr + static_cast<sim::Vaddr>(i) * sim::kPageSize, 1,
                                   std::byte{1}));
  }

  EXPECT_FALSE(big->alive) << "killer never fired";
  EXPECT_TRUE(small->alive);
  EXPECT_TRUE(driver->alive);
  EXPECT_EQ(nullptr, big->as);  // zombie shell, memory gone
  EXPECT_EQ(1u, w.machine.stats().oom_kills);
  EXPECT_GE(w.machine.stats().oom_pages_reclaimed, 48u);
  EXPECT_GT(w.machine.stats().fault_retries, 0u);
  EXPECT_GT(w.machine.stats().swap_full_events, 0u);
  w.vm->CheckInvariants();
  return Collect(w, {driver, big, small});
}

TEST_P(PressureTest, KillerPicksLargestAnonymousRss) { RunLargestRssScenario(GetParam()); }

TEST_P(PressureTest, KillerBreaksRssTiesTowardLowestPid) {
  World w(GetParam(), PressureConfig(/*ram_pages=*/96, /*swap_slots=*/16));
  w.kernel->set_oom_killer(true);
  kern::Proc* driver = w.kernel->Spawn();
  kern::Proc* first = SpawnResident(w, 32);
  kern::Proc* second = SpawnResident(w, 32);
  EXPECT_EQ(w.vm->AnonResidentPages(*first->as), w.vm->AnonResidentPages(*second->as));
  EXPECT_LT(first->pid, second->pid);

  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(driver, &addr, 48 * sim::kPageSize, kern::MapAttrs{}));
  for (int i = 0; i < 48 && first->alive && second->alive; ++i) {
    ASSERT_EQ(sim::kOk,
              w.kernel->TouchWrite(driver, addr + static_cast<sim::Vaddr>(i) * sim::kPageSize, 1,
                                   std::byte{2}));
  }

  EXPECT_FALSE(first->alive) << "tie must go to the lowest pid";
  EXPECT_TRUE(second->alive);
  EXPECT_TRUE(driver->alive);
  EXPECT_EQ(1u, w.machine.stats().oom_kills);
}

// When the faulting process is itself the largest consumer, it is a valid
// victim: the fault comes back kErrNoMem, the caller observes a dead
// process, and the rest of the system stays intact.
TEST_P(PressureTest, FaultingVictimObservesErrorInsteadOfCompleting) {
  World w(GetParam(), PressureConfig(/*ram_pages=*/96, /*swap_slots=*/16));
  w.kernel->set_oom_killer(true);
  kern::Proc* hog = w.kernel->Spawn();
  kern::Proc* bystander = SpawnResident(w, 8);

  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(hog, &addr, 96 * sim::kPageSize, kern::MapAttrs{}));
  int last_err = sim::kOk;
  for (int i = 0; i < 96 && last_err == sim::kOk; ++i) {
    last_err = w.kernel->TouchWrite(hog, addr + static_cast<sim::Vaddr>(i) * sim::kPageSize, 1,
                                    std::byte{3});
  }

  EXPECT_EQ(sim::kErrNoMem, last_err);
  EXPECT_FALSE(hog->alive);
  EXPECT_TRUE(bystander->alive);
  EXPECT_EQ(1u, w.machine.stats().oom_kills);
  w.vm->CheckInvariants();
}

// Same scenario, two fresh worlds: every counter, the victim set, the
// virtual clock, and the human-readable pressure report must agree exactly.
TEST_P(PressureTest, OutOfSwapKillIsDeterministic) {
  PressureOutcome a = RunLargestRssScenario(GetParam());
  PressureOutcome b = RunLargestRssScenario(GetParam());
  EXPECT_EQ(a, b);
  EXPECT_EQ(1u, a.oom_kills);
}

// Without the killer armed (the default), the same exhaustion surfaces as
// a typed error and no process is harmed — the legacy capacity-test
// contract.
TEST_P(PressureTest, DisarmedKillerSurfacesTypedErrorInstead) {
  World w(GetParam(), PressureConfig(/*ram_pages=*/96, /*swap_slots=*/16));
  ASSERT_FALSE(w.kernel->oom_killer());
  kern::Proc* hog = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  // More anonymous demand than ram + swap can back: exhaustion guaranteed.
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(hog, &addr, 160 * sim::kPageSize, kern::MapAttrs{}));
  int last_err = sim::kOk;
  for (int i = 0; i < 160 && last_err == sim::kOk; ++i) {
    last_err = w.kernel->TouchWrite(hog, addr + static_cast<sim::Vaddr>(i) * sim::kPageSize, 1,
                                    std::byte{4});
  }
  EXPECT_EQ(sim::kErrNoMem, last_err);
  EXPECT_TRUE(hog->alive);
  EXPECT_EQ(0u, w.machine.stats().oom_kills);
  w.vm->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(BothVms, PressureTest, ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

}  // namespace
