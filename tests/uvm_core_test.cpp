// UVM specifics: embedded memory objects and single-layer caching (§4),
// the pager-allocates clustered-I/O pager API (§6), needs-copy semantics,
// and fault-time neighbour mapping (§5.4).
#include <gtest/gtest.h>

#include "src/harness/world.h"
#include "src/sim/assert.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

uvm::Uvm* U(World& w) { return static_cast<uvm::Uvm*>(w.vm.get()); }

TEST(UvmObjectTest, MappingAFileAllocatesNoVmStructures) {
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", 4 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 4 * sim::kPageSize, "/f", 0, ro));
  // No BSD-style vm_object/vm_pager/vn_pager allocations, no amaps, no
  // anons — the uvm_object is embedded in the vnode (§4, Figure 4).
  EXPECT_EQ(0u, w.machine.stats().objects_allocated);
  EXPECT_EQ(0u, w.machine.stats().amaps_allocated);
  EXPECT_EQ(0u, w.machine.stats().anons_allocated);
}

TEST(UvmObjectTest, FilePagesPersistOnVnodeAfterUnmap) {
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", 8 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 8 * sim::kPageSize, "/f", 0, ro));
  w.kernel->TouchRead(p, addr, 8 * sim::kPageSize);
  ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, addr, 8 * sim::kPageSize));
  std::uint64_t ops = w.machine.stats().disk_ops;
  // Remap and re-read: everything still resident on the vnode's object.
  sim::Vaddr addr2 = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr2, 8 * sim::kPageSize, "/f", 0, ro));
  w.kernel->TouchRead(p, addr2, 8 * sim::kPageSize);
  EXPECT_EQ(ops, w.machine.stats().disk_ops);
}

TEST(UvmObjectTest, UnmappedVnodeGoesToVnodeLruNotAnObjectCache) {
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, sim::kPageSize, "/f", 0, ro));
  EXPECT_EQ(1, w.fs.cache().Peek("/f")->usecount());  // UVM's single reference
  ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, addr, sim::kPageSize));
  EXPECT_EQ(0, w.fs.cache().Peek("/f")->usecount());
  EXPECT_EQ(1u, w.fs.cache().cached_vnodes());
}

TEST(UvmObjectTest, VnodeRecycleFlushesDirtyPages) {
  WorldConfig cfg;
  cfg.max_vnodes = 2;
  World w(VmKind::kUvm, cfg);
  w.fs.CreateFilePattern("/f", 2 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs shared;
  shared.shared = true;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 2 * sim::kPageSize, "/f", 0, shared));
  w.kernel->TouchWrite(p, addr, 1, std::byte{0x5a});
  ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, addr, 2 * sim::kPageSize));
  // Force the vnode to be recycled (fill the 2-slot vnode table).
  for (int i = 0; i < 2; ++i) {
    std::string name = "/x" + std::to_string(i);
    w.fs.CreateFilePattern(name, sim::kPageSize);
    w.fs.Close(w.fs.Open(name));
  }
  EXPECT_EQ(nullptr, w.fs.cache().Peek("/f"));  // recycled
  // The dirty write survived via uvm_vnp_terminate's flush.
  sim::Vaddr addr2 = 0;
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr2, 2 * sim::kPageSize, "/f", 0, ro));
  std::vector<std::byte> b(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, addr2, b));
  EXPECT_EQ(std::byte{0x5a}, b[0]);
}

TEST(UvmPagerTest, SequentialReadsAreClustered) {
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", 16 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 16 * sim::kPageSize, "/f", 0, ro));
  w.kernel->TouchRead(p, addr, 16 * sim::kPageSize);
  // 16 pages in 8-page clusters: exactly 2 I/O operations.
  EXPECT_EQ(2u, w.machine.stats().disk_ops);
  EXPECT_EQ(16u, w.machine.stats().disk_pages_read);
}

TEST(UvmPagerTest, BsdReadsOnePagePerOperation) {
  World w(VmKind::kBsd);
  w.fs.CreateFilePattern("/f", 16 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 16 * sim::kPageSize, "/f", 0, ro));
  w.kernel->TouchRead(p, addr, 16 * sim::kPageSize);
  EXPECT_EQ(16u, w.machine.stats().disk_ops);
}

TEST(UvmPagerTest, ClusteringDisabledReadsSinglePages) {
  WorldConfig cfg;
  cfg.uvm.cluster_vnode_io = false;
  cfg.uvm.enable_lookahead = false;
  World w(VmKind::kUvm, cfg);
  w.fs.CreateFilePattern("/f", 8 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 8 * sim::kPageSize, "/f", 0, ro));
  w.kernel->TouchRead(p, addr, 8 * sim::kPageSize);
  EXPECT_EQ(8u, w.machine.stats().disk_ops);
}

TEST(UvmFaultTest, NeighborMappingReducesFaults) {
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", 8 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 8 * sim::kPageSize, "/f", 0, ro));
  std::uint64_t before = w.machine.stats().faults;
  w.kernel->TouchRead(p, addr, 8 * sim::kPageSize);
  // First fault reads the 8-page cluster and maps 4 pages ahead; the next
  // fault lands at page 5 — only 2 faults for 8 sequential pages.
  EXPECT_EQ(before + 2, w.machine.stats().faults);
  EXPECT_GT(w.machine.stats().fault_neighbor_maps, 0u);
}

TEST(UvmFaultTest, MadviseRandomDisablesLookahead) {
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", 8 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  ro.advice = sim::Advice::kRandom;
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 8 * sim::kPageSize, "/f", 0, ro));
  std::uint64_t before = w.machine.stats().faults;
  w.kernel->TouchRead(p, addr, 8 * sim::kPageSize);
  EXPECT_EQ(before + 8, w.machine.stats().faults);  // one fault per page
}

TEST(UvmFaultTest, MadviseSequentialLooksFurtherAhead) {
  World w(VmKind::kUvm);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, 16 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, addr, 16 * sim::kPageSize, std::byte{1});  // all resident
  ASSERT_EQ(sim::kOk, w.kernel->Madvise(p, addr, 16 * sim::kPageSize, sim::Advice::kSequential));
  p->as->pmap().RemoveRange(addr, addr + 16 * sim::kPageSize);
  std::uint64_t before = w.machine.stats().faults;
  w.kernel->TouchRead(p, addr, 16 * sim::kPageSize);
  // 7 pages of pure-forward lookahead: faults at 0 and 8 only.
  EXPECT_EQ(before + 2, w.machine.stats().faults);
}

TEST(UvmFaultTest, ReadOnPrivateMappingAllocatesNothing) {
  // Table 3's read/private row: UVM defers all anonymous-layer allocation
  // past read faults, unlike BSD VM's eager shadow.
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", 4 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 4 * sim::kPageSize, "/f", 0, kern::MapAttrs{}));
  w.kernel->TouchRead(p, addr, 4 * sim::kPageSize);
  EXPECT_EQ(0u, w.machine.stats().amaps_allocated);
  EXPECT_EQ(0u, w.machine.stats().anons_allocated);
  // The first write promotes exactly one page into a fresh anon.
  w.kernel->TouchWrite(p, addr, 1, std::byte{9});
  EXPECT_EQ(1u, w.machine.stats().amaps_allocated);
  EXPECT_EQ(1u, w.machine.stats().anons_allocated);
}

TEST(UvmFaultTest, PromotedPageShadowsObjectPage) {
  World w(VmKind::kUvm);
  w.fs.CreateFilePattern("/f", 2 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &addr, 2 * sim::kPageSize, "/f", 0, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, addr, 1, std::byte{0x21});
  std::vector<std::byte> b(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, addr, b));
  EXPECT_EQ(std::byte{0x21}, b[0]);  // amap layer wins the two-level lookup
  // Page 1 still reads through to the file.
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, addr + sim::kPageSize, b));
  EXPECT_EQ(vfs::Filesystem::PatternByte("/f", sim::kPageSize), b[0]);
}

TEST(UvmFaultTest, SharedAnonMappingSharedAcrossFork) {
  World w(VmKind::kUvm);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  kern::MapAttrs shared;
  shared.shared = true;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, 2 * sim::kPageSize, shared));
  EXPECT_EQ(1u, U(w)->LiveAmaps());  // shared anon amaps are eager
  kern::Proc* c = w.kernel->Fork(p);
  w.kernel->TouchWrite(c, addr, 1, std::byte{0x44});
  std::vector<std::byte> b(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, addr, b));
  EXPECT_EQ(std::byte{0x44}, b[0]);  // System-V-shm-style sharing
  w.kernel->Exit(c);
  w.vm->CheckInvariants();
}

TEST(UvmFaultTest, TwoPhaseUnmapHoldsLockShorterThanBsd) {
  auto lock_hold_for = [](VmKind kind) {
    World w(kind);
    kern::Proc* p = w.kernel->Spawn();
    sim::Vaddr addr = 0;
    int err = w.kernel->MmapAnon(p, &addr, 256 * sim::kPageSize, kern::MapAttrs{});
    SIM_ASSERT(err == sim::kOk);
    w.kernel->TouchWrite(p, addr, 256 * sim::kPageSize, std::byte{1});
    std::uint64_t before = w.machine.stats().map_lock_hold_ns;
    err = w.kernel->Munmap(p, addr, 256 * sim::kPageSize);
    SIM_ASSERT(err == sim::kOk);
    return w.machine.stats().map_lock_hold_ns - before;
  };
  // BSD VM drops object references (freeing 256 pages) with the map still
  // locked; UVM's phase 2 runs unlocked (§3.1).
  EXPECT_GT(lock_hold_for(VmKind::kBsd), 2 * lock_hold_for(VmKind::kUvm));
}

}  // namespace
