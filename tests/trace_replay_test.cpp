// Tests for the trace-replay tool: parsing, execution against both VM
// systems, verification semantics, and error reporting.
#include <gtest/gtest.h>

#include "src/harness/world.h"
#include "src/kern/trace_replay.h"

namespace {

using harness::VmKind;
using harness::World;

class TraceReplayTest : public ::testing::TestWithParam<VmKind> {
 protected:
  World w{GetParam()};
};

TEST_P(TraceReplayTest, BasicAnonWorkflow) {
  const char* trace = R"(
    # allocate, write, verify, unmap
    proc a
    mmap a $m 8 rw private
    write a $m 3 0xab
    read  a $m 3 0xab
    read  a $m 4 0        # untouched zero-fill page
    munmap a $m 8
    exit a
  )";
  auto res = kern::ReplayTrace(*w.kernel, trace);
  EXPECT_EQ(sim::kOk, res.err) << res.message << " at line " << res.line;
  EXPECT_EQ(7u, res.ops_executed);
}

TEST_P(TraceReplayTest, CowForkScenario) {
  const char* trace = R"(
    proc parent
    mmap parent $m 4 rw private
    write parent $m 0 0x11
    fork parent child
    write child $m 0 0x22
    read  parent $m 0 0x11    # isolation
    read  child  $m 0 0x22
    exit child
    read  parent $m 0 0x11
  )";
  auto res = kern::ReplayTrace(*w.kernel, trace);
  EXPECT_EQ(sim::kOk, res.err) << res.message << " at line " << res.line;
}

TEST_P(TraceReplayTest, FileMappingAndPatternVerify) {
  const char* trace = R"(
    file /data 8
    proc a
    mmap a $f 4 ro private /data 2
    readf a $f 0 /data 2
    readf a $f 3 /data 5
  )";
  auto res = kern::ReplayTrace(*w.kernel, trace);
  EXPECT_EQ(sim::kOk, res.err) << res.message << " at line " << res.line;
}

TEST_P(TraceReplayTest, PagingPressureScenario) {
  const char* trace = R"(
    proc a
    mmap a $big 64 rw private
    write a $big 0  0x01
    write a $big 63 0x3f
    daemon 100000        # clamp: reclaim everything reclaimable
    read a $big 0  0x01
    read a $big 63 0x3f
  )";
  auto res = kern::ReplayTrace(*w.kernel, trace);
  EXPECT_EQ(sim::kOk, res.err) << res.message << " at line " << res.line;
}

TEST_P(TraceReplayTest, MismatchReportsLineAndValues) {
  const char* trace = "proc a\nmmap a $m 1 rw\nwrite a $m 0 1\nread a $m 0 2\n";
  auto res = kern::ReplayTrace(*w.kernel, trace);
  EXPECT_EQ(sim::kErrInval, res.err);
  EXPECT_EQ(4, res.line);
  EXPECT_NE(std::string::npos, res.message.find("mismatch"));
}

TEST_P(TraceReplayTest, BadSyntaxReported) {
  auto res = kern::ReplayTrace(*w.kernel, "proc a\nmmap a $m\n");
  EXPECT_NE(sim::kOk, res.err);
  EXPECT_EQ(2, res.line);
  auto res2 = kern::ReplayTrace(*w.kernel, "frobnicate x\n");
  EXPECT_NE(sim::kOk, res2.err);
  auto res3 = kern::ReplayTrace(*w.kernel, "proc a\nwrite a $nope 0 1\n");
  EXPECT_NE(sim::kOk, res3.err);
  EXPECT_NE(std::string::npos, res3.message.find("register"));
}

TEST_P(TraceReplayTest, WireOpsRun) {
  const char* trace = R"(
    proc a
    mmap a $m 4 rw
    mlock a $m 2
    sysctl a $m
    munlock a $m 2
    msync a $m 4
  )";
  auto res = kern::ReplayTrace(*w.kernel, trace);
  EXPECT_EQ(sim::kOk, res.err) << res.message << " at line " << res.line;
  w.vm->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(BothVms, TraceReplayTest,
                         ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

}  // namespace
