// Unit tests for the pmap (simulated MMU) layer: translations, protection,
// pv-entry reverse maps, wiring counts, and i386 page-table-page modelling.
#include <gtest/gtest.h>

#include "src/mmu/pmap.h"
#include "src/phys/phys_mem.h"
#include "src/sim/machine.h"

namespace {

class PmapTest : public ::testing::Test {
 protected:
  phys::Page* NewPage(sim::ObjOffset off = 0) {
    phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, off, false);
    EXPECT_NE(nullptr, p);
    return p;
  }

  sim::Machine machine;
  phys::PhysMem pm{machine, 128};
  mmu::MmuContext ctx{pm};
};

TEST_F(PmapTest, EnterExtractRoundTrip) {
  mmu::Pmap pmap(ctx, /*is_kernel=*/true);
  phys::Page* p = NewPage();
  pmap.Enter(0x1000, p, sim::Prot::kReadWrite, /*wired=*/false);
  auto pte = pmap.Extract(0x1000);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(p->pfn, pte->pfn);
  EXPECT_EQ(sim::Prot::kReadWrite, pte->prot);
  EXPECT_FALSE(pte->wired);
  EXPECT_FALSE(pmap.Extract(0x2000).has_value());
  EXPECT_EQ(1u, pmap.resident_count());
}

TEST_F(PmapTest, ExtractTruncatesToPageBoundary) {
  mmu::Pmap pmap(ctx, true);
  phys::Page* p = NewPage();
  pmap.Enter(0x1000, p, sim::Prot::kRead, false);
  EXPECT_TRUE(pmap.Extract(0x1abc).has_value());
}

TEST_F(PmapTest, ReplaceMappingUpdatesPvEntries) {
  mmu::Pmap pmap(ctx, true);
  phys::Page* a = NewPage();
  phys::Page* b = NewPage();
  pmap.Enter(0x1000, a, sim::Prot::kRead, false);
  EXPECT_EQ(1u, ctx.MappingCount(a));
  pmap.Enter(0x1000, b, sim::Prot::kRead, false);
  EXPECT_EQ(0u, ctx.MappingCount(a));
  EXPECT_EQ(1u, ctx.MappingCount(b));
  EXPECT_EQ(1u, pmap.resident_count());
}

TEST_F(PmapTest, ReenterSamePageChangesProtInPlace) {
  mmu::Pmap pmap(ctx, true);
  phys::Page* p = NewPage();
  pmap.Enter(0x1000, p, sim::Prot::kRead, false);
  pmap.Enter(0x1000, p, sim::Prot::kReadWrite, false);
  EXPECT_EQ(sim::Prot::kReadWrite, pmap.Extract(0x1000)->prot);
  EXPECT_EQ(1u, ctx.MappingCount(p));
}

TEST_F(PmapTest, RemoveDropsTranslationAndPv) {
  mmu::Pmap pmap(ctx, true);
  phys::Page* p = NewPage();
  pmap.Enter(0x1000, p, sim::Prot::kRead, false);
  pmap.Remove(0x1000);
  EXPECT_FALSE(pmap.Extract(0x1000).has_value());
  EXPECT_EQ(0u, ctx.MappingCount(p));
}

TEST_F(PmapTest, RemoveRangeOnlyTouchesRange) {
  mmu::Pmap pmap(ctx, true);
  for (int i = 0; i < 8; ++i) {
    pmap.Enter(0x1000 + i * sim::kPageSize, NewPage(i), sim::Prot::kRead, false);
  }
  pmap.RemoveRange(0x3000, 0x5000);
  EXPECT_TRUE(pmap.Extract(0x1000).has_value());
  EXPECT_TRUE(pmap.Extract(0x2000).has_value());
  EXPECT_FALSE(pmap.Extract(0x3000).has_value());
  EXPECT_FALSE(pmap.Extract(0x4000).has_value());
  EXPECT_TRUE(pmap.Extract(0x5000).has_value());
  EXPECT_EQ(6u, pmap.resident_count());
}

TEST_F(PmapTest, PageProtectLowersEveryMapping) {
  mmu::Pmap p1(ctx, true);
  mmu::Pmap p2(ctx, true);
  phys::Page* p = NewPage();
  p1.Enter(0x1000, p, sim::Prot::kReadWrite, false);
  p2.Enter(0x8000, p, sim::Prot::kReadWrite, false);
  EXPECT_EQ(2u, ctx.MappingCount(p));
  ctx.PageProtect(p, sim::Prot::kReadExec);
  EXPECT_EQ(sim::Prot::kRead, p1.Extract(0x1000)->prot);  // RW ∧ RX = R
  EXPECT_EQ(sim::Prot::kRead, p2.Extract(0x8000)->prot);
}

TEST_F(PmapTest, PageProtectNoneRemovesEveryMapping) {
  mmu::Pmap p1(ctx, true);
  mmu::Pmap p2(ctx, true);
  phys::Page* p = NewPage();
  p1.Enter(0x1000, p, sim::Prot::kRead, false);
  p2.Enter(0x9000, p, sim::Prot::kRead, false);
  std::size_t n = ctx.PageProtect(p, sim::Prot::kNone);
  EXPECT_EQ(2u, n);
  EXPECT_FALSE(p1.Extract(0x1000).has_value());
  EXPECT_FALSE(p2.Extract(0x9000).has_value());
  EXPECT_EQ(0u, ctx.MappingCount(p));
}

TEST_F(PmapTest, WiringCountsTracked) {
  mmu::Pmap pmap(ctx, true);
  phys::Page* a = NewPage();
  phys::Page* b = NewPage();
  pmap.Enter(0x1000, a, sim::Prot::kRead, /*wired=*/true);
  pmap.Enter(0x2000, b, sim::Prot::kRead, /*wired=*/false);
  EXPECT_EQ(1u, pmap.wired_count());
  pmap.ChangeWiring(0x2000, true);
  EXPECT_EQ(2u, pmap.wired_count());
  pmap.ChangeWiring(0x1000, false);
  EXPECT_EQ(1u, pmap.wired_count());
  pmap.Remove(0x2000);
  EXPECT_EQ(0u, pmap.wired_count());
}

TEST_F(PmapTest, IntersectProtRangeKeepsWiredMappingsAlive) {
  mmu::Pmap pmap(ctx, true);
  phys::Page* a = NewPage();
  phys::Page* b = NewPage();
  pmap.Enter(0x1000, a, sim::Prot::kWrite, /*wired=*/true);
  pmap.Enter(0x2000, b, sim::Prot::kWrite, /*wired=*/false);
  // Intersection with kRead is empty for both; the wired one must survive.
  pmap.IntersectProtRange(0x1000, 0x3000, sim::Prot::kRead);
  ASSERT_TRUE(pmap.Extract(0x1000).has_value());
  EXPECT_EQ(sim::Prot::kNone, pmap.Extract(0x1000)->prot);
  EXPECT_FALSE(pmap.Extract(0x2000).has_value());
}

TEST_F(PmapTest, UserPmapAllocatesPtPagesPerRegion) {
  mmu::Pmap pmap(ctx, /*is_kernel=*/false);
  std::size_t free_before = pm.free_pages();
  phys::Page* p = NewPage();
  pmap.Enter(0x1000, p, sim::Prot::kRead, false);
  EXPECT_EQ(1u, pmap.ptpage_count());
  // Same 4 MB region: no new PT page.
  phys::Page* q = NewPage();
  pmap.Enter(0x2000, q, sim::Prot::kRead, false);
  EXPECT_EQ(1u, pmap.ptpage_count());
  // Different region.
  phys::Page* r = NewPage();
  pmap.Enter(0x0100'0000, r, sim::Prot::kRead, false);
  EXPECT_EQ(2u, pmap.ptpage_count());
  // 3 user pages + 2 PT pages consumed.
  EXPECT_EQ(free_before - 5, pm.free_pages());
}

TEST_F(PmapTest, KernelPmapNeedsNoPtPages) {
  mmu::Pmap pmap(ctx, /*is_kernel=*/true);
  pmap.Enter(0xC000'0000, NewPage(), sim::Prot::kReadWrite, true);
  EXPECT_EQ(0u, pmap.ptpage_count());
}

TEST_F(PmapTest, PtPageHooksFire) {
  int allocs = 0;
  int frees = 0;
  {
    mmu::Pmap pmap(
        ctx, false, [&](phys::Page*) { ++allocs; }, [&](phys::Page*) { ++frees; });
    pmap.Enter(0x1000, NewPage(), sim::Prot::kRead, false);
    pmap.Enter(0x0100'0000, NewPage(), sim::Prot::kRead, false);
    EXPECT_EQ(2, allocs);
    EXPECT_EQ(0, frees);
  }
  EXPECT_EQ(2, frees);
}

TEST_F(PmapTest, DestructorReleasesEverything) {
  std::size_t free_before = pm.free_pages();
  phys::Page* p = NewPage();
  {
    mmu::Pmap pmap(ctx, false);
    pmap.Enter(0x1000, p, sim::Prot::kRead, false);
    EXPECT_EQ(1u, ctx.MappingCount(p));
  }
  EXPECT_EQ(0u, ctx.MappingCount(p));
  // Only the user page itself remains allocated; PT page returned.
  EXPECT_EQ(free_before - 1, pm.free_pages());
  pm.FreePage(p);
}

TEST_F(PmapTest, ProtectRangeAdjustsExistingOnly) {
  mmu::Pmap pmap(ctx, true);
  phys::Page* p = NewPage();
  pmap.Enter(0x4000, p, sim::Prot::kReadWrite, false);
  pmap.ProtectRange(0x1000, 0x8000, sim::Prot::kRead);
  EXPECT_EQ(sim::Prot::kRead, pmap.Extract(0x4000)->prot);
  EXPECT_EQ(1u, pmap.resident_count());
}

}  // namespace
