// Unit tests for the simulation substrate itself: virtual clock, RNG
// determinism, stats reset, error names, page arithmetic, and the
// reporting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/dump.h"
#include "src/harness/world.h"
#include "src/sim/report.h"
#include "src/sim/rng.h"

namespace {

TEST(ClockTest, AdvancesAndConverts) {
  sim::Clock c;
  EXPECT_EQ(0u, c.now());
  c.Advance(1'500'000'000);
  EXPECT_EQ(1'500'000'000u, c.now());
  EXPECT_DOUBLE_EQ(1.5, c.now_seconds());
  EXPECT_DOUBLE_EQ(1'500'000.0, c.now_micros());
  c.Reset();
  EXPECT_EQ(0u, c.now());
}

TEST(ClockTest, SpanMeasuresElapsed) {
  sim::Clock c;
  sim::ClockSpan span(c);
  c.Advance(250);
  EXPECT_EQ(250u, span.elapsed());
  c.Advance(250);
  EXPECT_EQ(500u, span.elapsed());
}

TEST(MachineTest, ChargeAdvancesOnlyTheClock) {
  sim::Machine m;
  m.Charge(42);
  EXPECT_EQ(42u, m.clock().now());
  EXPECT_EQ(0u, m.stats().faults);
}

TEST(PageArithmeticTest, TruncRoundAndCounts) {
  EXPECT_EQ(0u, sim::PageTrunc(4095));
  EXPECT_EQ(4096u, sim::PageTrunc(4096));
  EXPECT_EQ(4096u, sim::PageRound(1));
  EXPECT_EQ(0u, sim::PageRound(0));
  EXPECT_EQ(8192u, sim::PageRound(4097));
  EXPECT_EQ(2u, sim::BytesToPages(4097));
  EXPECT_EQ(1u, sim::BytesToPages(1));
  EXPECT_EQ(3u * 4096, sim::PagesToBytes(3));
}

TEST(ProtTest, BitOperations) {
  using sim::Prot;
  EXPECT_TRUE(sim::CanRead(Prot::kReadWrite));
  EXPECT_TRUE(sim::CanWrite(Prot::kReadWrite));
  EXPECT_FALSE(sim::CanWrite(Prot::kReadExec));
  EXPECT_EQ(Prot::kRead, Prot::kReadWrite & Prot::kReadExec);
  EXPECT_EQ(Prot::kReadWrite, Prot::kRead | Prot::kWrite);
  EXPECT_TRUE(sim::ProtIncludes(Prot::kAll, Prot::kReadWrite));
  EXPECT_FALSE(sim::ProtIncludes(Prot::kRead, Prot::kWrite));
}

TEST(ErrorNameTest, KnownAndUnknown) {
  EXPECT_STREQ("OK", sim::ErrorName(sim::kOk));
  EXPECT_STREQ("EFAULT", sim::ErrorName(sim::kErrFault));
  EXPECT_STREQ("ENOMEM", sim::ErrorName(sim::kErrNoMem));
  EXPECT_STREQ("EMAPENTRYPOOL", sim::ErrorName(sim::kErrMapEntryPool));
  EXPECT_STREQ("E???", sim::ErrorName(999));
}

TEST(RngTest, DeterministicPerSeed) {
  sim::Rng a(7);
  sim::Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  sim::Rng c(8);
  bool differs = false;
  sim::Rng a2(7);
  for (int i = 0; i < 16; ++i) {
    differs |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundsRespected) {
  sim::Rng r(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(10), 10u);
    std::uint64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(StatsTest, ResetClearsEverything) {
  sim::Stats s;
  s.faults = 10;
  s.swap_ops = 3;
  s.leaked_pages_detected = 1;
  s.Reset();
  EXPECT_EQ(0u, s.faults);
  EXPECT_EQ(0u, s.swap_ops);
  EXPECT_EQ(0u, s.leaked_pages_detected);
}

TEST(ReportTest, StatsReportMentionsKeyCounters) {
  sim::Machine m;
  m.stats().faults = 5;
  m.stats().swap_ops = 2;
  std::ostringstream os;
  sim::ReportStats(os, m);
  EXPECT_NE(std::string::npos, os.str().find("faults:       5"));
  std::ostringstream line;
  sim::ReportIoLine(line, m);
  EXPECT_NE(std::string::npos, line.str().find("faults=5"));
  EXPECT_NE(std::string::npos, line.str().find("swap_ops=2"));
}

TEST(DumpTest, BothSystemsProduceStructureDumps) {
  for (harness::VmKind kind : {harness::VmKind::kBsd, harness::VmKind::kUvm}) {
    harness::World w(kind);
    kern::Proc* p = w.kernel->Spawn();
    w.fs.CreateFilePattern("/f", 4 * sim::kPageSize);
    sim::Vaddr file_va = 0;
    ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &file_va, 4 * sim::kPageSize, "/f", 0,
                                       kern::MapAttrs{}));
    sim::Vaddr anon_va = 0;
    ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &anon_va, 4 * sim::kPageSize, kern::MapAttrs{}));
    w.kernel->TouchWrite(p, anon_va, 2 * sim::kPageSize, std::byte{1});
    w.kernel->TouchWrite(p, file_va, 1, std::byte{2});
    std::ostringstream os;
    kern::DumpMap(os, *w.vm, *p->as);
    std::string out = os.str();
    EXPECT_NE(std::string::npos, out.find("2 entries")) << out;
    if (kind == harness::VmKind::kUvm) {
      EXPECT_NE(std::string::npos, out.find("amap[")) << out;
      EXPECT_NE(std::string::npos, out.find("uobj[")) << out;
    } else {
      EXPECT_NE(std::string::npos, out.find("chain-depth=")) << out;
    }
  }
}

TEST(ShmTest, SharedSegmentsWorkOnUvm) {
  harness::World w(harness::VmKind::kUvm);
  int shmid = 0;
  ASSERT_EQ(sim::kOk, w.kernel->ShmCreate(4, &shmid));
  kern::Proc* a = w.kernel->Spawn();
  kern::Proc* b = w.kernel->Spawn();
  sim::Vaddr va_a = 0;
  sim::Vaddr va_b = 0;
  ASSERT_EQ(sim::kOk, w.kernel->ShmAttach(a, shmid, &va_a));
  ASSERT_EQ(sim::kOk, w.kernel->ShmAttach(b, shmid, &va_b));
  // Writes through one attachment are visible through the other.
  w.kernel->TouchWrite(a, va_a + sim::kPageSize, 1, std::byte{0x99});
  std::vector<std::byte> buf(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(b, va_b + sim::kPageSize, buf));
  EXPECT_EQ(std::byte{0x99}, buf[0]);
  // Contents survive the writer's exit while any attachment remains.
  w.kernel->Exit(a);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(b, va_b + sim::kPageSize, buf));
  EXPECT_EQ(std::byte{0x99}, buf[0]);
  ASSERT_EQ(sim::kOk, w.kernel->ShmDetach(b, shmid, va_b));
  ASSERT_EQ(sim::kOk, w.kernel->ShmRemove(shmid));
  w.vm->CheckInvariants();
}

TEST(ShmTest, BsdVmCannotShareUnrelatedAddressSpaces) {
  // §1.1: under BSD VM it is "not possible for processes to easily
  // exchange, copy, or share chunks of their virtual address space".
  harness::World w(harness::VmKind::kBsd);
  int shmid = 0;
  ASSERT_EQ(sim::kOk, w.kernel->ShmCreate(4, &shmid));
  kern::Proc* a = w.kernel->Spawn();
  sim::Vaddr va = 0;
  EXPECT_EQ(sim::kErrNotSup, w.kernel->ShmAttach(a, shmid, &va));
  ASSERT_EQ(sim::kOk, w.kernel->ShmRemove(shmid));
}

TEST(ShmTest, InvalidIdsRejected) {
  harness::World w(harness::VmKind::kUvm);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr va = 0;
  EXPECT_EQ(sim::kErrInval, w.kernel->ShmAttach(p, 42, &va));
  EXPECT_EQ(sim::kErrInval, w.kernel->ShmRemove(42));
}

}  // namespace
