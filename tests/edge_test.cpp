// Edge cases across the fault, extract, and inheritance machinery that the
// mainline tests don't reach: faults at entry boundaries, extracts of
// wired and swapped memory, inheritance changes after fork, repeated
// protect churn over COW state, and exec-like full teardown mid-pressure.
#include <gtest/gtest.h>

#include "src/harness/world.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

class EdgeTest : public ::testing::TestWithParam<VmKind> {
 protected:
  World w{GetParam()};

  std::byte ReadByte(kern::Proc* p, sim::Vaddr va) {
    std::vector<std::byte> b(1);
    EXPECT_EQ(sim::kOk, w.kernel->ReadMem(p, va, b));
    return b[0];
  }
};

TEST_P(EdgeTest, FaultAtFirstAndLastPageOfEntry) {
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 8 * sim::kPageSize, kern::MapAttrs{}));
  EXPECT_EQ(sim::kOk, w.vm->Fault(*p->as, a, sim::Access::kWrite));
  EXPECT_EQ(sim::kOk, w.vm->Fault(*p->as, a + 7 * sim::kPageSize + 4095, sim::Access::kWrite));
  EXPECT_EQ(sim::kErrFault, w.vm->Fault(*p->as, a + 8 * sim::kPageSize, sim::Access::kRead));
}

TEST_P(EdgeTest, RepeatedFaultOnSamePageIsIdempotent) {
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, sim::kPageSize, kern::MapAttrs{}));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sim::kOk, w.vm->Fault(*p->as, a, sim::Access::kWrite));
  }
  EXPECT_EQ(1u, p->as->pmap().resident_count());
  w.vm->CheckInvariants();
}

TEST_P(EdgeTest, ProtectChurnOverCowKeepsData) {
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 4 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 4 * sim::kPageSize, std::byte{0x5e});
  kern::Proc* c = w.kernel->Fork(p);
  for (int round = 0; round < 4; ++round) {
    ASSERT_EQ(sim::kOk, w.kernel->Mprotect(p, a, 4 * sim::kPageSize, sim::Prot::kRead));
    ASSERT_EQ(sim::kOk, w.kernel->Mprotect(p, a, 4 * sim::kPageSize, sim::Prot::kReadWrite));
  }
  w.kernel->TouchWrite(p, a, 1, std::byte{0x60});
  EXPECT_EQ(std::byte{0x5e}, ReadByte(c, a));
  EXPECT_EQ(std::byte{0x60}, ReadByte(p, a));
  w.kernel->Exit(c);
  w.vm->CheckInvariants();
}

TEST_P(EdgeTest, InheritanceChangeAfterForkOnlyAffectsNextFork) {
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 2 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 1, std::byte{1});
  kern::Proc* c1 = w.kernel->Fork(p);
  ASSERT_EQ(sim::kOk, w.kernel->Minherit(p, a, 2 * sim::kPageSize, sim::Inherit::kNone));
  kern::Proc* c2 = w.kernel->Fork(p);
  // c1 keeps its copy; c2 has a hole.
  EXPECT_EQ(std::byte{1}, ReadByte(c1, a));
  std::vector<std::byte> b(1);
  EXPECT_EQ(sim::kErrFault, w.kernel->ReadMem(c2, a, b));
  w.kernel->Exit(c1);
  w.kernel->Exit(c2);
  w.vm->CheckInvariants();
}

TEST_P(EdgeTest, MsyncOfCleanRangeDoesNothing) {
  w.fs.CreateFilePattern("/f", 4 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  kern::MapAttrs shared;
  shared.shared = true;
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &a, 4 * sim::kPageSize, "/f", 0, shared));
  w.kernel->TouchRead(p, a, 4 * sim::kPageSize);
  std::uint64_t writes = w.machine.stats().disk_pages_written;
  ASSERT_EQ(sim::kOk, w.kernel->Msync(p, a, 4 * sim::kPageSize));
  EXPECT_EQ(writes, w.machine.stats().disk_pages_written);
}

TEST_P(EdgeTest, ExitUnderMemoryPressureReleasesEverything) {
  WorldConfig cfg;
  cfg.ram_pages = 96;
  World w2(GetParam(), cfg);
  std::size_t swap_used_before = w2.swap.used_slots();
  for (int round = 0; round < 3; ++round) {
    kern::Proc* p = w2.kernel->Spawn();
    sim::Vaddr a = 0;
    ASSERT_EQ(sim::kOk, w2.kernel->MmapAnon(p, &a, 128 * sim::kPageSize, kern::MapAttrs{}));
    w2.kernel->TouchWrite(p, a, 128 * sim::kPageSize, std::byte{1});
    w2.kernel->Exit(p);
    EXPECT_EQ(swap_used_before, w2.swap.used_slots()) << "round " << round;
  }
  w2.vm->CheckInvariants();
}

TEST_P(EdgeTest, ZeroFillReadThenWriteUpgrades) {
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, sim::kPageSize, kern::MapAttrs{}));
  EXPECT_EQ(std::byte{0}, ReadByte(p, a));  // read fault first
  ASSERT_EQ(sim::kOk, w.kernel->TouchWrite(p, a, 1, std::byte{0x2a}));
  EXPECT_EQ(std::byte{0x2a}, ReadByte(p, a));
  w.vm->CheckInvariants();
}

TEST_P(EdgeTest, ForkOfProcessWithEverything) {
  // One fork across every mapping type at once.
  w.fs.CreateFilePattern("/f", 4 * sim::kPageSize);
  kern::DeviceMem* dev = w.kernel->RegisterDevice("/dev/fb", 2);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr anon = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &anon, 4 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, anon, 4 * sim::kPageSize, std::byte{1});
  kern::MapAttrs shared;
  shared.shared = true;
  sim::Vaddr file_sh = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &file_sh, 4 * sim::kPageSize, "/f", 0, shared));
  sim::Vaddr file_pr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &file_pr, 4 * sim::kPageSize, "/f", 0, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, file_pr, 1, std::byte{2});
  sim::Vaddr devva = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapDevice(p, &devva, dev, shared));
  ASSERT_EQ(sim::kOk, w.kernel->Mlock(p, anon, sim::kPageSize));

  kern::Proc* c = w.kernel->Fork(p);
  EXPECT_EQ(std::byte{1}, ReadByte(c, anon));
  EXPECT_EQ(std::byte{2}, ReadByte(c, file_pr));
  EXPECT_EQ(vfs::Filesystem::PatternByte("/f", 0), ReadByte(c, file_sh));
  EXPECT_EQ(vfs::Filesystem::PatternByte("/dev/fb", 0), ReadByte(c, devva));
  // Child writes diverge on private memory, share on shared memory.
  w.kernel->TouchWrite(c, anon, 1, std::byte{9});
  EXPECT_EQ(std::byte{1}, ReadByte(p, anon));
  w.kernel->TouchWrite(c, file_sh, 1, std::byte{8});
  EXPECT_EQ(std::byte{8}, ReadByte(p, file_sh));
  w.kernel->Exit(c);
  w.kernel->Exit(p);
  w.vm->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(BothVms, EdgeTest, ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

}  // namespace
