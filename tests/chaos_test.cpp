// Chaos engine (src/sim/chaos.h, DESIGN.md §17): spec parsing and
// round-trips, storm construction determinism and per-component stream
// independence, chaos-armed double-run byte-identity across schedule
// strategies, repro-string capture, shrinker convergence on a synthetic
// fixture bug, and death tests proving the deadlock/rank validators still
// fire under fuzzed (PCT, preemption-bounded) schedules.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/world.h"
#include "src/kern/fleet.h"
#include "src/sim/chaos.h"
#include "src/sim/lock.h"
#include "src/sim/machine.h"
#include "src/sim/scheduler.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

// --- Spec parsing ---------------------------------------------------------

TEST(ChaosSpecTest, SchedSpecParsesEveryStrategy) {
  sim::SchedSpec spec;
  std::string error;
  ASSERT_TRUE(sim::ParseSchedSpec("rr", &spec, &error));
  EXPECT_EQ(sim::SchedStrategy::kRoundRobin, spec.strat);
  EXPECT_EQ(0u, spec.param);
  EXPECT_EQ(0u, spec.seed);
  ASSERT_TRUE(sim::ParseSchedSpec("random:7", &spec, &error));
  EXPECT_EQ(sim::SchedStrategy::kRandom, spec.strat);
  EXPECT_EQ(7u, spec.seed);
  ASSERT_TRUE(sim::ParseSchedSpec("burst", &spec, &error));
  EXPECT_EQ(sim::SchedStrategy::kRandomBurst, spec.strat);
  ASSERT_TRUE(sim::ParseSchedSpec("pct3:9", &spec, &error));
  EXPECT_EQ(sim::SchedStrategy::kPct, spec.strat);
  EXPECT_EQ(3u, spec.param);
  EXPECT_EQ(9u, spec.seed);
  ASSERT_TRUE(sim::ParseSchedSpec("pb16", &spec, &error));
  EXPECT_EQ(sim::SchedStrategy::kPreemptBound, spec.strat);
  EXPECT_EQ(16u, spec.param);
}

TEST(ChaosSpecTest, SchedSpecRejectsMalformedInput) {
  sim::SchedSpec spec;
  std::string error;
  for (const char* bad : {"", "bogus", "pct0", "rr5", "burst9", "pct3:abc", "pb:1:2", "pb-4"}) {
    EXPECT_FALSE(sim::ParseSchedSpec(bad, &spec, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ChaosSpecTest, SchedSpecRoundTripsThroughFormat) {
  for (const char* text : {"rr", "random:7", "burst:12", "pct3:9", "pb4", "pct7"}) {
    sim::SchedSpec spec;
    std::string error;
    ASSERT_TRUE(sim::ParseSchedSpec(text, &spec, &error)) << text;
    EXPECT_EQ(text, sim::FormatSchedSpec(spec));
    sim::SchedSpec again;
    ASSERT_TRUE(sim::ParseSchedSpec(sim::FormatSchedSpec(spec), &again, &error));
    EXPECT_EQ(spec, again) << text;
  }
}

TEST(ChaosSpecTest, ChaosSpecParsesComponentsAndOptions) {
  sim::ChaosSpec spec;
  std::string error;
  ASSERT_TRUE(sim::ParseChaosSpec("io=4,pressure=2,poison=1:seed=9:span=80ms", &spec, &error));
  EXPECT_EQ(4u, spec.io);
  EXPECT_EQ(2u, spec.pressure);
  EXPECT_EQ(1u, spec.poison);
  EXPECT_EQ(9u, spec.seed);
  EXPECT_EQ(80'000'000u, spec.span);
  EXPECT_TRUE(spec.armed());
  // Defaults: unlisted components 0, seed 1, span 50ms.
  ASSERT_TRUE(sim::ParseChaosSpec("io=2", &spec, &error));
  EXPECT_EQ(2u, spec.io);
  EXPECT_EQ(0u, spec.pressure);
  EXPECT_EQ(0u, spec.poison);
  EXPECT_EQ(1u, spec.seed);
  EXPECT_EQ(50'000'000u, spec.span);
  // Disarmed but parseable (what a fully shrunk scenario emits).
  ASSERT_TRUE(sim::ParseChaosSpec("io=0:seed=3:span=1ms", &spec, &error));
  EXPECT_FALSE(spec.armed());
}

TEST(ChaosSpecTest, ChaosSpecRejectsMalformedInput) {
  sim::ChaosSpec spec;
  std::string error;
  for (const char* bad :
       {"", "wat=3", "io", "io=x", "io=1:span=0", "io=1:wat=3", "io=1:seed=x",
        "io=1:span=5lightyears"}) {
    EXPECT_FALSE(sim::ParseChaosSpec(bad, &spec, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ChaosSpecTest, ChaosSpecRoundTripsThroughFormat) {
  for (const char* text :
       {"io=4,pressure=2,poison=1:seed=9:span=80ms", "io=2:seed=1:span=50ms",
        "pressure=7:seed=3:span=123ns"}) {
    sim::ChaosSpec spec;
    std::string error;
    ASSERT_TRUE(sim::ParseChaosSpec(text, &spec, &error)) << text;
    EXPECT_EQ(text, sim::FormatChaosSpec(spec)) << text;
    sim::ChaosSpec again;
    ASSERT_TRUE(sim::ParseChaosSpec(sim::FormatChaosSpec(spec), &again, &error));
    EXPECT_EQ(spec, again) << text;
  }
}

// --- Repro strings --------------------------------------------------------

TEST(ChaosReproTest, ReproRoundTripsValuesWithPlanGrammar) {
  // Values carry '=' , ';' and ':' — everything the plan grammars use.
  const std::vector<std::pair<std::string, std::string>> kv = {
      {"bench", "bench_chaos"},
      {"a0", "--ops=30000"},
      {"a1", "--chaos=io=4,pressure=2:seed=9:span=80ms"},
      {"a2", "--pressure=@10ms phys-=512; @20ms phys+=512"},
  };
  const std::string repro = sim::FormatRepro(kv);
  EXPECT_EQ(0u, repro.find("uvmchaos/v1|"));
  std::vector<std::pair<std::string, std::string>> parsed;
  std::string error;
  ASSERT_TRUE(sim::ParseRepro(repro, &parsed, &error));
  EXPECT_EQ(kv, parsed);
  ASSERT_NE(nullptr, sim::ReproValue(parsed, "a1"));
  EXPECT_EQ("--chaos=io=4,pressure=2:seed=9:span=80ms", *sim::ReproValue(parsed, "a1"));
  EXPECT_EQ(nullptr, sim::ReproValue(parsed, "a9"));
}

TEST(ChaosReproTest, ReproRejectsForeignAndMalformedStrings) {
  std::vector<std::pair<std::string, std::string>> parsed;
  std::string error;
  EXPECT_FALSE(sim::ParseRepro("somethingelse/v1|a=b", &parsed, &error));
  EXPECT_FALSE(sim::ParseRepro("uvmchaos/v1|noequals", &parsed, &error));
  EXPECT_FALSE(sim::ParseRepro("uvmchaos/v1|=value", &parsed, &error));
  EXPECT_TRUE(sim::ParseRepro("uvmchaos/v1", &parsed, &error));  // bare prefix is fine
  EXPECT_TRUE(parsed.empty());
}

TEST(ChaosReproDeathTest, PanicPrintsTheRegisteredReproString) {
  static const std::string repro = "uvmchaos/v1|bench=chaos_test|a0=--seed=5";
  sim::SetPanicRepro(repro.c_str());
  EXPECT_DEATH(SIM_PANIC("synthetic chaos failure"),
               "panic: .*synthetic chaos failure.*\n.*repro: uvmchaos/v1\\|bench=chaos_test");
  sim::SetPanicRepro(nullptr);
}

// --- Storm construction ---------------------------------------------------

TEST(ChaosStormTest, SameSpecBuildsTheSameStorm) {
  sim::ChaosSpec spec;
  std::string error;
  ASSERT_TRUE(sim::ParseChaosSpec("io=8,pressure=4,poison=3:seed=11:span=60ms", &spec, &error));
  const sim::ChaosGeometry geom{8192, 32768};
  const sim::ChaosStorm a = sim::BuildChaosStorm(spec, geom);
  const sim::ChaosStorm b = sim::BuildChaosStorm(spec, geom);
  ASSERT_EQ(a.pressure.events.size(), b.pressure.events.size());
  EXPECT_EQ(4u + 2u, a.pressure.events.size());  // 4 shrink/set + 2 restore
  for (std::size_t i = 0; i < a.pressure.events.size(); ++i) {
    EXPECT_EQ(a.pressure.events[i].at, b.pressure.events[i].at);
    EXPECT_EQ(a.pressure.events[i].amount, b.pressure.events[i].amount);
  }
  ASSERT_EQ(3u, a.mem.events.size());
  for (std::size_t i = 0; i < a.mem.events.size(); ++i) {
    EXPECT_EQ(a.mem.events[i].at, b.mem.events[i].at);
    EXPECT_EQ(a.mem.events[i].count, b.mem.events[i].count);
    EXPECT_TRUE(a.mem.events[i].random);
  }
  // The io component arms both Bernoulli rates and scheduled faults.
  EXPECT_EQ(8u, a.io_fs.read_num);
  EXPECT_EQ(1000u, a.io_fs.read_den);
  EXPECT_EQ(8u, a.io_swap.write_num);
  EXPECT_EQ(8u, a.io_fs.fail_reads.size() + a.io_fs.fail_writes.size() +
                    a.io_swap.fail_reads.size() + a.io_swap.fail_writes.size());
}

// Per-component streams are decorrelated: dropping one component must not
// move another component's events — the property the shrinker rests on.
TEST(ChaosStormTest, ComponentsDrawFromIndependentStreams) {
  sim::ChaosSpec spec;
  std::string error;
  ASSERT_TRUE(sim::ParseChaosSpec("io=8,pressure=4,poison=3:seed=11:span=60ms", &spec, &error));
  const sim::ChaosGeometry geom{8192, 32768};
  const sim::ChaosStorm full = sim::BuildChaosStorm(spec, geom);
  sim::ChaosSpec no_io = spec;
  no_io.io = 0;
  const sim::ChaosStorm without = sim::BuildChaosStorm(no_io, geom);
  ASSERT_EQ(full.pressure.events.size(), without.pressure.events.size());
  for (std::size_t i = 0; i < full.pressure.events.size(); ++i) {
    EXPECT_EQ(full.pressure.events[i].at, without.pressure.events[i].at);
    EXPECT_EQ(full.pressure.events[i].amount, without.pressure.events[i].amount);
  }
  ASSERT_EQ(full.mem.events.size(), without.mem.events.size());
  for (std::size_t i = 0; i < full.mem.events.size(); ++i) {
    EXPECT_EQ(full.mem.events[i].at, without.mem.events[i].at);
  }
  EXPECT_TRUE(without.io_fs.fail_reads.empty());
  EXPECT_EQ(0u, without.io_fs.read_num);
}

// --- Schedule strategies --------------------------------------------------

// PCT demotes the running CPU at exactly k preemption points: the turn
// sequence is piecewise-constant with at most k value changes.
TEST(ChaosSchedTest, PctChangesCpuAtMostKTimes) {
  sim::Machine m;
  m.scheduler().Configure(4, 3);
  m.scheduler().SetStrategy(sim::SchedSpec{sim::SchedStrategy::kPct, 3, 99});
  std::size_t changes = 0;
  std::size_t prev = m.scheduler().NextTurnCpu();
  for (int i = 0; i < 5000; ++i) {
    const std::size_t cpu = m.scheduler().NextTurnCpu();
    if (cpu != prev) {
      ++changes;
    }
    prev = cpu;
  }
  EXPECT_LE(changes, 3u);
  EXPECT_GE(changes, 1u);  // three draws over a 4096-turn horizon land inside it
}

// Preemption-bounded sweep: deterministic round-robin that only rotates
// every N turns — no randomness at all. Like the classic round-robin it
// advances before the first turn, so a 2-CPU sweep opens on CPU 1.
TEST(ChaosSchedTest, PreemptBoundRotatesEveryNTurns) {
  sim::Machine m;
  m.scheduler().Configure(2, 1);
  m.scheduler().SetStrategy(sim::SchedSpec{sim::SchedStrategy::kPreemptBound, 4, 1});
  std::vector<std::size_t> turns;
  for (int i = 0; i < 12; ++i) {
    turns.push_back(m.scheduler().NextTurnCpu());
  }
  const std::vector<std::size_t> want = {1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(want, turns);
}

// --- Chaos-armed fleet determinism ----------------------------------------

std::vector<std::string> FleetFingerprint(VmKind kind, const std::string& chaos_plan,
                                          const sim::SchedSpec& sched, bool shared) {
  WorldConfig wc;
  wc.chaos_plan = chaos_plan;
  World w(kind, wc);
  kern::FleetConfig cfg;
  cfg.target_ops = 20000;
  // The default fleet sizing: 6 workers on 4 CPUs (bench_chaos --workers
  // sweeps wider fleets; EXPERIMENTS.md's survival matrix covers those).
  cfg.workers = 6;
  cfg.cpus = 4;
  cfg.sched = sched;
  cfg.shared_storm = shared;
  kern::FleetWorkload fleet(*w.kernel, cfg);
  const kern::FleetCounters& c = fleet.Run();
  std::vector<std::string> fp;
  fp.push_back("ops:" + std::to_string(c.ops) + " soft:" + std::to_string(c.soft_errors) +
               " respawn:" + std::to_string(c.workers_respawned) +
               " shared:" + std::to_string(c.shared_storms));
  fp.push_back("t:" + std::to_string(w.machine.clock().now()) +
               " faults:" + std::to_string(w.machine.stats().faults) +
               " io_err:" + std::to_string(w.machine.stats().io_errors_injected) +
               " pres:" + std::to_string(w.machine.stats().pressure_events) +
               " poison:" + std::to_string(w.machine.stats().memfault_events));
  return fp;
}

// Every strategy × chaos-armed combination double-runs identically: chaos
// runs are exactly as deterministic as classic ones.
TEST(ChaosDeterminismTest, ChaosArmedFleetDoubleRunsAreIdentical) {
  const std::string storm = "io=6,pressure=3,poison=2:seed=5:span=30ms";
  for (const char* sched_text : {"rr", "random:3", "burst:4", "pct3:7", "pb8"}) {
    sim::SchedSpec sched;
    std::string error;
    ASSERT_TRUE(sim::ParseSchedSpec(sched_text, &sched, &error));
    for (VmKind kind : {VmKind::kBsd, VmKind::kUvm}) {
      const auto a = FleetFingerprint(kind, storm, sched, /*shared=*/true);
      const auto b = FleetFingerprint(kind, storm, sched, /*shared=*/true);
      EXPECT_EQ(a, b) << "chaos fleet diverged under " << sched_text;
    }
  }
}

// Fuzzed schedules explore different interleavings: a random schedule's
// fingerprint must differ from round-robin's (same seed, same storm).
TEST(ChaosDeterminismTest, FuzzedSchedulesActuallyChangeTheInterleaving) {
  const std::string storm = "io=6,pressure=3:seed=5:span=30ms";
  sim::SchedSpec rr;
  sim::SchedSpec random;
  std::string error;
  ASSERT_TRUE(sim::ParseSchedSpec("random:3", &random, &error));
  const auto a = FleetFingerprint(VmKind::kUvm, storm, rr, false);
  const auto b = FleetFingerprint(VmKind::kUvm, storm, random, false);
  EXPECT_NE(a, b);
}

// The shared-map storm actually converges workers on one mapping.
TEST(ChaosFleetTest, SharedStormRoundsAreServed) {
  const auto fp = FleetFingerprint(VmKind::kUvm, "", sim::SchedSpec{}, /*shared=*/true);
  EXPECT_NE(std::string::npos, fp[0].find("shared:"));
  EXPECT_EQ(std::string::npos, fp[0].find("shared:0 "));  // nonzero rounds
}

// --- Validators under fuzzed schedules ------------------------------------

// The cross-CPU deadlock detector fires under a PCT schedule exactly as it
// does under round-robin: strategies change who runs, never what is legal.
TEST(ChaosValidatorDeathTest, DeadlockDetectorFiresUnderPctSchedule) {
  sim::Machine m;
  m.scheduler().Configure(2, 1);
  m.scheduler().SetStrategy(sim::SchedSpec{sim::SchedStrategy::kPct, 2, 5});
  sim::SimLock lock(m, "t.chaos.dead", sim::LockRank::kMap);
  lock.Acquire();
  // SIM_SCHED_SWITCH_OK: deliberately yields with a lock held to prove the
  // detector fires under a fuzzed strategy too.
  m.scheduler().SwitchTo(1);
  EXPECT_DEATH(lock.Acquire(),
               "deadlock: cpu1 acquiring lock t.chaos.dead held by descheduled cpu0");
  // SIM_SCHED_SWITCH_OK: back to the owner to release cleanly.
  m.scheduler().SwitchTo(0);
  lock.Release();
}

// The rank validator fires under a preemption-bounded schedule.
TEST(ChaosValidatorDeathTest, RankValidatorFiresUnderPreemptBoundSchedule) {
  sim::Machine m;
  m.scheduler().Configure(2, 1);
  m.scheduler().SetStrategy(sim::SchedSpec{sim::SchedStrategy::kPreemptBound, 4, 1});
  sim::SimLock pmap(m, "t.chaos.pmap", sim::LockRank::kPmap);
  sim::SimLock map(m, "t.chaos.map", sim::LockRank::kMap);
  pmap.Acquire();
  EXPECT_DEATH(map.Acquire(),
               "lock rank violation: acquiring t.chaos.map \\(rank map\\) "
               "while holding t.chaos.pmap \\(rank pmap\\)");
  pmap.Release();
}

// --- Shrinker -------------------------------------------------------------

// Convergence on a seeded fixture bug: the predicate fails whenever io >= 2
// and cpus >= 2 and ops >= 1000; everything else is noise the shrinker must
// strip, landing on the minimal scenario in a bounded number of probes.
TEST(ChaosShrinkTest, ShrinkerConvergesOnFixtureBug) {
  sim::ChaosScenario start;
  start.cpus = 8;
  start.ops = 200'000;
  start.seed = 7;
  start.shared_storm = true;
  start.sched.strat = sim::SchedStrategy::kPct;
  start.sched.param = 3;
  start.chaos.io = 9;
  start.chaos.pressure = 4;
  start.chaos.poison = 2;
  auto still_fails = [](const sim::ChaosScenario& c) {
    return c.chaos.io >= 2 && c.cpus >= 2 && c.ops >= 1000;
  };
  std::size_t probes = 0;
  const sim::ChaosScenario minimal = sim::ShrinkScenario(start, still_fails, &probes);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_EQ(2u, minimal.chaos.io);
  EXPECT_EQ(0u, minimal.chaos.pressure);
  EXPECT_EQ(0u, minimal.chaos.poison);
  EXPECT_EQ(2u, minimal.cpus);
  EXPECT_FALSE(minimal.shared_storm);
  EXPECT_EQ(sim::SchedStrategy::kRoundRobin, minimal.sched.strat);
  EXPECT_GE(minimal.ops, 1000u);
  EXPECT_LT(minimal.ops, 2000u);  // one more halving would pass
  EXPECT_LE(probes, 512u);
  EXPECT_GT(probes, 0u);
  // Shrinking is idempotent: re-shrinking the minimum accepts nothing.
  std::size_t again = 0;
  EXPECT_EQ(minimal, sim::ShrinkScenario(minimal, still_fails, &again));
}

// The worker dimension shrinks toward the cpu floor; workers == 0 (the
// engine's default sizing) is never a shrink target.
TEST(ChaosShrinkTest, WorkersShrinkTowardTheCpuFloor) {
  sim::ChaosScenario start;
  start.cpus = 2;
  start.workers = 16;
  start.ops = 10'000;
  start.chaos.io = 4;
  auto still_fails = [](const sim::ChaosScenario& c) {
    return c.workers >= 5 && c.chaos.io >= 1 && c.ops >= 1;
  };
  const sim::ChaosScenario minimal = sim::ShrinkScenario(start, still_fails);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_EQ(8u, minimal.workers);  // 16 -> 8; one more halving would pass

  // Default-sized fleets stay default-sized: no candidate invents a count.
  sim::ChaosScenario dflt = start;
  dflt.workers = 0;
  EXPECT_EQ(0u, sim::ShrinkScenario(dflt, [](const sim::ChaosScenario& c) {
              return c.chaos.io >= 1 && c.ops >= 1;
            }).workers);
}

// A predicate that only ever fails on the start scenario leaves it alone.
TEST(ChaosShrinkTest, UnshrinkableScenarioIsReturnedIntact) {
  sim::ChaosScenario start;
  start.cpus = 4;
  start.ops = 50'000;
  start.chaos.io = 5;
  auto still_fails = [&start](const sim::ChaosScenario& c) { return c == start; };
  EXPECT_EQ(start, sim::ShrinkScenario(start, still_fails));
}

// The probe budget is a hard cap even for pathological predicates.
TEST(ChaosShrinkTest, ProbeBudgetIsRespected) {
  sim::ChaosScenario start;
  start.cpus = 64;
  start.ops = 1'000'000'000;
  start.chaos.io = 1'000'000;
  start.chaos.pressure = 1'000'000;
  auto still_fails = [](const sim::ChaosScenario&) { return true; };
  std::size_t probes = 0;
  sim::ShrinkScenario(start, still_fails, &probes, 40);
  EXPECT_LE(probes, 40u);
}

}  // namespace
