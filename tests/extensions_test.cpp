// Tests for the features beyond the paper's 1999 feature set: MADV_FREE,
// mincore, vfork, clustered swap-in (the paper's future-work item), and
// optional map-entry coalescing.
#include <gtest/gtest.h>

#include "src/harness/world.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

class MadvFreeTest : public ::testing::TestWithParam<VmKind> {};

TEST_P(MadvFreeTest, DiscardsContentsAndRereadsZero) {
  World w(GetParam());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 8 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 8 * sim::kPageSize, std::byte{0x77});
  ASSERT_EQ(sim::kOk, w.kernel->MadvFree(p, a + 2 * sim::kPageSize, 4 * sim::kPageSize));
  std::vector<std::byte> b(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a + 3 * sim::kPageSize, b));
  EXPECT_EQ(std::byte{0}, b[0]);  // discarded
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a, b));
  EXPECT_EQ(std::byte{0x77}, b[0]);  // outside the range: untouched
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a + 7 * sim::kPageSize, b));
  EXPECT_EQ(std::byte{0x77}, b[0]);
  w.vm->CheckInvariants();
}

TEST_P(MadvFreeTest, FreesMemoryAndSwap) {
  WorldConfig cfg;
  cfg.ram_pages = 64;
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 48 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 48 * sim::kPageSize, std::byte{1});
  w.vm->PageDaemon(32);  // push some to swap
  std::size_t free_before = w.pm.free_pages();
  std::size_t swap_before = w.swap.used_slots();
  ASSERT_EQ(sim::kOk, w.kernel->MadvFree(p, a, 48 * sim::kPageSize));
  EXPECT_GT(w.pm.free_pages(), free_before);
  EXPECT_LT(w.swap.used_slots(), swap_before);
  w.vm->CheckInvariants();
}

TEST_P(MadvFreeTest, DoesNotTouchSharedCowMemory) {
  // After a fork, the memory is COW-shared: MADV_FREE must not destroy the
  // relative's view.
  World w(GetParam());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 4 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 4 * sim::kPageSize, std::byte{0x42});
  kern::Proc* c = w.kernel->Fork(p);
  ASSERT_EQ(sim::kOk, w.kernel->MadvFree(p, a, 4 * sim::kPageSize));
  std::vector<std::byte> b(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(c, a, b));
  EXPECT_EQ(std::byte{0x42}, b[0]);
  w.kernel->Exit(c);
  w.vm->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(BothVms, MadvFreeTest, ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

class MincoreTest : public ::testing::TestWithParam<VmKind> {};

TEST_P(MincoreTest, ReportsResidency) {
  World w(GetParam());
  w.fs.CreateFilePattern("/f", 4 * sim::kPageSize);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  ro.advice = sim::Advice::kRandom;  // defeat clustering for a crisp result
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &a, 4 * sim::kPageSize, "/f", 0, ro));
  std::vector<bool> vec;
  ASSERT_EQ(sim::kOk, w.kernel->Mincore(p, a, 4 * sim::kPageSize, &vec));
  EXPECT_EQ(std::vector<bool>({false, false, false, false}), vec);
  w.kernel->TouchRead(p, a + sim::kPageSize, 1);
  ASSERT_EQ(sim::kOk, w.kernel->Mincore(p, a, 4 * sim::kPageSize, &vec));
  EXPECT_TRUE(vec[1]);
  EXPECT_FALSE(vec[3]);
}

TEST_P(MincoreTest, SeesThroughSwap) {
  WorldConfig cfg;
  cfg.ram_pages = 64;
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 8 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 8 * sim::kPageSize, std::byte{1});
  std::vector<bool> vec;
  ASSERT_EQ(sim::kOk, w.kernel->Mincore(p, a, 8 * sim::kPageSize, &vec));
  EXPECT_TRUE(vec[0]);
  w.vm->PageDaemon(w.pm.total_pages());  // everything out
  ASSERT_EQ(sim::kOk, w.kernel->Mincore(p, a, 8 * sim::kPageSize, &vec));
  for (bool r : vec) {
    EXPECT_FALSE(r);
  }
}

TEST_P(MincoreTest, UnmappedRangeFails) {
  World w(GetParam());
  kern::Proc* p = w.kernel->Spawn();
  std::vector<bool> vec;
  EXPECT_EQ(sim::kErrFault, w.kernel->Mincore(p, 0x5000'0000, sim::kPageSize, &vec));
}

INSTANTIATE_TEST_SUITE_P(BothVms, MincoreTest, ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

class VforkTest : public ::testing::TestWithParam<VmKind> {};

TEST_P(VforkTest, ChildSharesAddressSpace) {
  World w(GetParam());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 4 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 1, std::byte{1});
  std::uint64_t copies = w.machine.stats().pages_copied;
  kern::Proc* c = w.kernel->Vfork(p);
  EXPECT_EQ(p->as, c->as);
  // Child writes are the parent's writes (shared AS).
  w.kernel->TouchWrite(c, a, 1, std::byte{2});
  std::vector<std::byte> b(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a, b));
  EXPECT_EQ(std::byte{2}, b[0]);
  EXPECT_EQ(copies, w.machine.stats().pages_copied);  // zero COW activity
  w.kernel->Exit(c);
  // Parent's address space survives the child's exit.
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a, b));
  EXPECT_EQ(std::byte{2}, b[0]);
  w.vm->CheckInvariants();
}

TEST_P(VforkTest, VforkIsMuchCheaperThanFork) {
  World w(GetParam());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 1024 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, a, 1024 * sim::kPageSize, std::byte{1});
  sim::Nanoseconds t0 = w.machine.clock().now();
  kern::Proc* c1 = w.kernel->Fork(p);
  w.kernel->Exit(c1);
  sim::Nanoseconds fork_cost = w.machine.clock().now() - t0;
  t0 = w.machine.clock().now();
  kern::Proc* c2 = w.kernel->Vfork(p);
  w.kernel->Exit(c2);
  sim::Nanoseconds vfork_cost = w.machine.clock().now() - t0;
  EXPECT_GT(fork_cost, 10 * vfork_cost);
}

INSTANTIATE_TEST_SUITE_P(BothVms, VforkTest, ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

TEST(SwapInClusterTest, ClusteredSwapInUsesFewerOperations) {
  auto swap_in_ops = [](bool cluster) {
    WorldConfig cfg;
    cfg.ram_pages = 128;
    cfg.uvm.cluster_swap_in = cluster;
    World w(VmKind::kUvm, cfg);
    kern::Proc* p = w.kernel->Spawn();
    sim::Vaddr a = 0;
    const std::size_t npages = 64;
    int err = w.kernel->MmapAnon(p, &a, npages * sim::kPageSize, kern::MapAttrs{});
    EXPECT_EQ(sim::kOk, err);
    // Sequential dirtying, clustered pageout -> contiguous swap slots.
    w.kernel->TouchWrite(p, a, npages * sim::kPageSize, std::byte{0x21});
    w.vm->PageDaemon(w.pm.total_pages());
    // Now swap everything back in by reading sequentially.
    std::uint64_t ops_before = w.machine.stats().swap_ops;
    w.kernel->TouchRead(p, a, npages * sim::kPageSize);
    // Verify contents while we are at it.
    std::vector<std::byte> b(1);
    for (std::size_t i = 0; i < npages; ++i) {
      w.kernel->ReadMem(p, a + i * sim::kPageSize, b);
      EXPECT_EQ(std::byte{0x21}, b[0]);
    }
    w.vm->CheckInvariants();
    return w.machine.stats().swap_ops - ops_before;
  };
  std::uint64_t without = swap_in_ops(false);
  std::uint64_t with = swap_in_ops(true);
  EXPECT_GE(without, 4 * with);
}

TEST(SwapInClusterTest, ClusterRoundTripPreservesBytes) {
  WorldConfig cfg;
  cfg.ram_pages = 96;
  cfg.uvm.cluster_swap_in = true;
  World w(VmKind::kUvm, cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  const std::size_t npages = 48;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, npages * sim::kPageSize, kern::MapAttrs{}));
  for (std::size_t i = 0; i < npages; ++i) {
    w.kernel->TouchWrite(p, a + i * sim::kPageSize, 1, std::byte{static_cast<unsigned char>(i)});
  }
  w.vm->PageDaemon(w.pm.total_pages());
  for (std::size_t i = 0; i < npages; ++i) {
    std::vector<std::byte> b(1);
    ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a + i * sim::kPageSize, b));
    EXPECT_EQ(std::byte{static_cast<unsigned char>(i)}, b[0]) << i;
  }
  w.vm->CheckInvariants();
}

TEST(EntryMergeTest, AdjacentAnonMappingsCoalesce) {
  WorldConfig cfg;
  cfg.uvm.merge_map_entries = true;
  World w(VmKind::kUvm, cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0x1000'0000;
  kern::MapAttrs fixed;
  fixed.fixed = true;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 4 * sim::kPageSize, fixed));
  sim::Vaddr b = a + 4 * sim::kPageSize;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &b, 4 * sim::kPageSize, fixed));
  EXPECT_EQ(1u, p->as->EntryCount());
  EXPECT_EQ(1u, w.machine.stats().map_entries_merged);
  // The merged region works as one mapping.
  w.kernel->TouchWrite(p, a, 8 * sim::kPageSize, std::byte{5});
  std::vector<std::byte> v(1);
  ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a + 7 * sim::kPageSize, v));
  EXPECT_EQ(std::byte{5}, v[0]);
  w.vm->CheckInvariants();
}

TEST(EntryMergeTest, IncompatibleNeighborsDoNotMerge) {
  WorldConfig cfg;
  cfg.uvm.merge_map_entries = true;
  World w(VmKind::kUvm, cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0x1000'0000;
  kern::MapAttrs fixed;
  fixed.fixed = true;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 4 * sim::kPageSize, fixed));
  sim::Vaddr b = a + 4 * sim::kPageSize;
  kern::MapAttrs ro = fixed;
  ro.prot = sim::Prot::kRead;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &b, 4 * sim::kPageSize, ro));
  EXPECT_EQ(2u, p->as->EntryCount());
  // Non-adjacent mappings never merge either.
  sim::Vaddr c = b + 8 * sim::kPageSize;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &c, 4 * sim::kPageSize, fixed));
  EXPECT_EQ(3u, p->as->EntryCount());
}

TEST(EntryMergeTest, MergingOffByDefaultPreservesTable1) {
  World w(VmKind::kUvm);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0x1000'0000;
  kern::MapAttrs fixed;
  fixed.fixed = true;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 4 * sim::kPageSize, fixed));
  sim::Vaddr b = a + 4 * sim::kPageSize;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &b, 4 * sim::kPageSize, fixed));
  EXPECT_EQ(2u, p->as->EntryCount());
}

}  // namespace
