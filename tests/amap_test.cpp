// Unit tests for UVM's anon/amap layer: both slot-storage implementations
// behind the interface (§5.4), plus amap/anon semantics exercised through
// the full VM (copy deferral, reference counting, sole-reference writes).
#include <gtest/gtest.h>

#include "src/core/amap.h"
#include "src/harness/world.h"

namespace {

using harness::VmKind;
using harness::World;

// --- AmapImpl behaviour, parameterized over implementations ---

class AmapImplTest : public ::testing::TestWithParam<uvm::AmapImplPolicy> {
 protected:
  std::unique_ptr<uvm::AmapImpl> Make(std::uint64_t nslots) {
    return uvm::MakeAmapImpl(GetParam(), nslots);
  }
};

TEST_P(AmapImplTest, StartsEmpty) {
  auto impl = Make(16);
  EXPECT_EQ(16u, impl->nslots());
  EXPECT_EQ(0u, impl->count());
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(nullptr, impl->Get(i));
  }
}

TEST_P(AmapImplTest, SetGetClear) {
  auto impl = Make(8);
  uvm::Anon a1;
  uvm::Anon a2;
  impl->Set(3, &a1);
  impl->Set(7, &a2);
  EXPECT_EQ(&a1, impl->Get(3));
  EXPECT_EQ(&a2, impl->Get(7));
  EXPECT_EQ(2u, impl->count());
  impl->Set(3, nullptr);
  EXPECT_EQ(nullptr, impl->Get(3));
  EXPECT_EQ(1u, impl->count());
}

TEST_P(AmapImplTest, OverwriteKeepsCount) {
  auto impl = Make(4);
  uvm::Anon a1;
  uvm::Anon a2;
  impl->Set(2, &a1);
  impl->Set(2, &a2);
  EXPECT_EQ(&a2, impl->Get(2));
  EXPECT_EQ(1u, impl->count());
}

TEST_P(AmapImplTest, ForEachVisitsExactlyOccupiedSlots) {
  auto impl = Make(64);
  uvm::Anon anons[5];
  std::uint64_t slots[5] = {0, 7, 13, 42, 63};
  for (int i = 0; i < 5; ++i) {
    impl->Set(slots[i], &anons[i]);
  }
  std::map<std::uint64_t, uvm::Anon*> seen;
  impl->ForEach([&](std::uint64_t slot, uvm::Anon* a) { seen[slot] = a; });
  ASSERT_EQ(5u, seen.size());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(&anons[i], seen[slots[i]]);
  }
}

TEST_P(AmapImplTest, LargeSparseUsage) {
  auto impl = Make(1u << 20);  // 4 GB worth of slots
  uvm::Anon a;
  impl->Set(0, &a);
  impl->Set((1u << 20) - 1, &a);
  impl->Set(123456, &a);
  EXPECT_EQ(3u, impl->count());
  EXPECT_EQ(&a, impl->Get(123456));
  EXPECT_EQ(nullptr, impl->Get(123457));
}

INSTANTIATE_TEST_SUITE_P(AllImpls, AmapImplTest,
                         ::testing::Values(uvm::AmapImplPolicy::kArray,
                                           uvm::AmapImplPolicy::kHash,
                                           uvm::AmapImplPolicy::kHybrid),
                         [](const ::testing::TestParamInfo<uvm::AmapImplPolicy>& param_info) {
                           switch (param_info.param) {
                             case uvm::AmapImplPolicy::kArray:
                               return "array";
                             case uvm::AmapImplPolicy::kHash:
                               return "hash";
                             default:
                               return "hybrid";
                           }
                         });

TEST(AmapPolicyTest, HybridPicksBySize) {
  auto small = uvm::MakeAmapImpl(uvm::AmapImplPolicy::kHybrid, 16);
  auto large = uvm::MakeAmapImpl(uvm::AmapImplPolicy::kHybrid, 1u << 16);
  EXPECT_STREQ("array", small->kind());
  EXPECT_STREQ("hash", large->kind());
}

// --- anon/amap semantics through the full VM ---

TEST(AnonSemanticsTest, ZeroFillAllocatesAnonsLazily) {
  World w(VmKind::kUvm);
  auto* vm = static_cast<uvm::Uvm*>(w.vm.get());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, 32 * sim::kPageSize, kern::MapAttrs{}));
  EXPECT_EQ(0u, vm->LiveAnons());
  EXPECT_EQ(0u, vm->LiveAmaps());
  w.kernel->TouchWrite(p, addr, 3 * sim::kPageSize, std::byte{1});
  EXPECT_EQ(3u, vm->LiveAnons());
  EXPECT_EQ(1u, vm->LiveAmaps());  // allocated at first fault
  w.kernel->Exit(p);
  EXPECT_EQ(0u, vm->LiveAnons());
  EXPECT_EQ(0u, vm->LiveAmaps());
}

TEST(AnonSemanticsTest, SoleReferenceWriteDoesNotCopy) {
  World w(VmKind::kUvm);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, addr, 1, std::byte{1});
  std::uint64_t copies = w.machine.stats().pages_copied;
  // Drop the mapping from the pmap and write-fault again: the anon has a
  // single reference, so UVM writes in place (§5.3).
  p->as->pmap().Remove(addr);
  w.kernel->TouchWrite(p, addr, 1, std::byte{2});
  EXPECT_EQ(copies, w.machine.stats().pages_copied);
}

TEST(AnonSemanticsTest, ForkChildWriteCopiesOnlyTouchedPages) {
  World w(VmKind::kUvm);
  auto* vm = static_cast<uvm::Uvm*>(w.vm.get());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, 8 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, addr, 8 * sim::kPageSize, std::byte{1});
  EXPECT_EQ(8u, vm->LiveAnons());
  kern::Proc* c = w.kernel->Fork(p);
  EXPECT_EQ(8u, vm->LiveAnons());  // deferred: nothing copied at fork
  w.kernel->TouchWrite(c, addr, 2 * sim::kPageSize, std::byte{2});
  EXPECT_EQ(10u, vm->LiveAnons());  // two pages copied, six still shared
  w.kernel->Exit(c);
  EXPECT_EQ(8u, vm->LiveAnons());
  w.vm->CheckInvariants();
}

TEST(AnonSemanticsTest, ChildWithSoleAmapReferenceReusesIt) {
  // Figure 3, third column: after the parent copies its amap, the child
  // holds the only reference to the original amap; the child's fault must
  // clear needs-copy without allocating a new amap.
  World w(VmKind::kUvm);
  auto* vm = static_cast<uvm::Uvm*>(w.vm.get());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, 3 * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, addr, 3 * sim::kPageSize, std::byte{1});
  kern::Proc* c = w.kernel->Fork(p);
  std::uint64_t amaps_before = w.machine.stats().amaps_allocated;
  // Parent writes middle page: allocates a second amap.
  w.kernel->TouchWrite(p, addr + sim::kPageSize, 1, std::byte{2});
  EXPECT_EQ(amaps_before + 1, w.machine.stats().amaps_allocated);
  // Child writes right page: needs-copy cleared with NO new amap.
  w.kernel->TouchWrite(c, addr + 2 * sim::kPageSize, 1, std::byte{3});
  EXPECT_EQ(amaps_before + 1, w.machine.stats().amaps_allocated);
  EXPECT_EQ(2u, vm->LiveAmaps());
  w.kernel->Exit(c);
  w.vm->CheckInvariants();
}

TEST(AnonSemanticsTest, AnonCountMatchesAccessiblePages) {
  // The paper's §5.3 claim: amap/anon refcounts track exactly the pages
  // that are accessible; nothing leaks through fork/write/exit churn.
  World w(VmKind::kUvm);
  auto* vm = static_cast<uvm::Uvm*>(w.vm.get());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr addr = 0;
  const std::size_t npages = 16;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &addr, npages * sim::kPageSize, kern::MapAttrs{}));
  w.kernel->TouchWrite(p, addr, npages * sim::kPageSize, std::byte{1});
  for (int round = 0; round < 6; ++round) {
    kern::Proc* c = w.kernel->Fork(p);
    w.kernel->TouchWrite(c, addr, (npages / 2) * sim::kPageSize, std::byte{2});
    w.kernel->Exit(c);
    w.kernel->TouchWrite(p, addr, (npages / 2) * sim::kPageSize, std::byte{3});
  }
  // Only the parent is alive: exactly npages pages are reachable.
  EXPECT_EQ(npages, vm->LiveAnons());
  w.vm->CheckInvariants();
}

}  // namespace
