// Unit tests for the physical memory layer: frame allocation, page queues,
// wiring, contents, and the cost/stat accounting other layers rely on.
#include <gtest/gtest.h>

#include "src/phys/phys_mem.h"
#include "src/sim/machine.h"

namespace {

class PhysTest : public ::testing::Test {
 protected:
  sim::Machine machine;
  phys::PhysMem pm{machine, 64};
};

TEST_F(PhysTest, FreshMemoryIsAllFree) {
  EXPECT_EQ(64u, pm.total_pages());
  EXPECT_EQ(64u, pm.free_pages());
  EXPECT_EQ(0u, pm.active_pages());
  EXPECT_EQ(0u, pm.inactive_pages());
}

TEST_F(PhysTest, AllocTakesFromFreeList) {
  phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, 7, /*zero=*/false);
  ASSERT_NE(nullptr, p);
  EXPECT_EQ(63u, pm.free_pages());
  EXPECT_EQ(phys::OwnerKind::kKernel, p->owner_kind);
  EXPECT_EQ(this, p->owner);
  EXPECT_EQ(7u, p->offset);
  EXPECT_EQ(phys::PageQueue::kNone, p->queue);
}

TEST_F(PhysTest, AllocZeroClearsContentsAndCharges) {
  phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, /*zero=*/false);
  pm.Data(p)[123] = std::byte{0xff};
  pm.FreePage(p);
  sim::Nanoseconds before = machine.clock().now();
  // The freed frame is reallocated (FIFO): request zeroed memory.
  phys::Page* q;
  do {
    q = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, /*zero=*/true);
  } while (q != p && q != nullptr);
  ASSERT_EQ(p, q);
  EXPECT_EQ(std::byte{0}, pm.Data(q)[123]);
  EXPECT_GT(machine.clock().now(), before);
  EXPECT_GT(machine.stats().pages_zeroed, 0u);
}

TEST_F(PhysTest, ExhaustionReturnsNull) {
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_NE(nullptr, pm.AllocPage(phys::OwnerKind::kKernel, this, i, false));
  }
  EXPECT_EQ(nullptr, pm.AllocPage(phys::OwnerKind::kKernel, this, 99, false));
}

TEST_F(PhysTest, FreeReturnsToFreeList) {
  phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false);
  pm.FreePage(p);
  EXPECT_EQ(64u, pm.free_pages());
  EXPECT_EQ(phys::OwnerKind::kNone, p->owner_kind);
  EXPECT_EQ(nullptr, p->owner);
}

TEST_F(PhysTest, ActivateDeactivateMoveBetweenQueues) {
  phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false);
  pm.Activate(p);
  EXPECT_EQ(phys::PageQueue::kActive, p->queue);
  EXPECT_EQ(1u, pm.active_pages());
  pm.Deactivate(p);
  EXPECT_EQ(phys::PageQueue::kInactive, p->queue);
  EXPECT_EQ(0u, pm.active_pages());
  EXPECT_EQ(1u, pm.inactive_pages());
  pm.Dequeue(p);
  EXPECT_EQ(phys::PageQueue::kNone, p->queue);
  EXPECT_EQ(0u, pm.inactive_pages());
  pm.FreePage(p);
}

TEST_F(PhysTest, InactiveQueueIsFifo) {
  phys::Page* a = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false);
  phys::Page* b = pm.AllocPage(phys::OwnerKind::kKernel, this, 1, false);
  phys::Page* c = pm.AllocPage(phys::OwnerKind::kKernel, this, 2, false);
  pm.Deactivate(a);
  pm.Deactivate(b);
  pm.Deactivate(c);
  EXPECT_EQ(a, pm.inactive_queue().head());
  pm.Dequeue(a);
  EXPECT_EQ(b, pm.inactive_queue().head());
  EXPECT_EQ(b->q_next, c);
  pm.Dequeue(b);
  pm.Dequeue(c);
  for (phys::Page* p : {a, b, c}) {
    pm.FreePage(p);
  }
}

TEST_F(PhysTest, WireRemovesFromQueuesUnwireReactivates) {
  phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false);
  pm.Activate(p);
  pm.Wire(p);
  EXPECT_EQ(1, p->wire_count);
  EXPECT_EQ(phys::PageQueue::kNone, p->queue);
  pm.Wire(p);
  EXPECT_EQ(2, p->wire_count);
  pm.Unwire(p);
  EXPECT_EQ(phys::PageQueue::kNone, p->queue);  // still wired once
  pm.Unwire(p);
  EXPECT_EQ(phys::PageQueue::kActive, p->queue);
  pm.Dequeue(p);
  pm.FreePage(p);
}

TEST_F(PhysTest, CopyPageCopiesContentsAndCharges) {
  phys::Page* a = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, true);
  phys::Page* b = pm.AllocPage(phys::OwnerKind::kKernel, this, 1, true);
  pm.Data(a)[0] = std::byte{0x42};
  pm.Data(a)[4095] = std::byte{0x24};
  sim::Nanoseconds before = machine.clock().now();
  pm.CopyPage(a, b);
  EXPECT_EQ(std::byte{0x42}, pm.Data(b)[0]);
  EXPECT_EQ(std::byte{0x24}, pm.Data(b)[4095]);
  EXPECT_EQ(machine.cost().page_copy_ns, machine.clock().now() - before);
  EXPECT_EQ(1u, machine.stats().pages_copied);
  pm.FreePage(a);
  pm.FreePage(b);
}

TEST_F(PhysTest, FreeTargetDefaultsToFivePercent) {
  EXPECT_EQ(64u / 20 + 4, pm.free_target());
  EXPECT_FALSE(pm.NeedsPageDaemon());
  std::vector<phys::Page*> held;
  while (pm.free_pages() > pm.free_target() - 1) {
    held.push_back(pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false));
  }
  EXPECT_TRUE(pm.NeedsPageDaemon());
  for (phys::Page* p : held) {
    pm.FreePage(p);
  }
}

TEST_F(PhysTest, FreeReserveBlocksNormalAllocsButNotEmergency) {
  pm.set_free_reserve(8);
  std::vector<phys::Page*> held;
  while (pm.free_pages() > 8) {
    held.push_back(pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false));
    ASSERT_NE(nullptr, held.back());
  }
  // Only the emergency reserve remains: a normal request is refused (and
  // counted) so the caller reclaims and retries instead of deadlocking the
  // daemon on its own working memory.
  EXPECT_EQ(nullptr, pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false));
  EXPECT_EQ(1u, machine.stats().page_alloc_failures);
  EXPECT_EQ(8u, pm.free_pages());
  phys::Page* p =
      pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false, phys::AllocPri::kEmergency);
  ASSERT_NE(nullptr, p);
  EXPECT_EQ(1u, machine.stats().emergency_page_allocs);
  pm.FreePage(p);
  for (phys::Page* h : held) {
    pm.FreePage(h);
  }
}

TEST_F(PhysTest, PageoutScopeMakesAllocsEmergency) {
  pm.set_free_reserve(64);  // everything below the reserve from the start
  EXPECT_FALSE(pm.in_pageout());
  EXPECT_EQ(nullptr, pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false));
  {
    phys::PageoutScope scope(pm);
    EXPECT_TRUE(pm.in_pageout());
    phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false);
    ASSERT_NE(nullptr, p);
    EXPECT_EQ(1u, machine.stats().emergency_page_allocs);
    pm.FreePage(p);
  }
  EXPECT_FALSE(pm.in_pageout());
}

TEST_F(PhysTest, BalloonAbsorbsFreeFramesDownToFloorOnly) {
  phys::Page* a = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false);
  ASSERT_NE(nullptr, a);
  // Ask to balloon more than exists: absorption stops at the floor (4
  // frames with no watermarks set) and the rest is a deficit.
  pm.SetBalloonTarget(100);
  EXPECT_EQ(59u, pm.balloon_pages());
  EXPECT_EQ(4u, pm.free_pages());
  // Freed frames feed the deficit one at a time instead of re-entering
  // service, but never squeeze the free list below the floor.
  pm.FreePage(a);
  EXPECT_EQ(60u, pm.balloon_pages());
  EXPECT_EQ(4u, pm.free_pages());
  // Growing returns frames to the free list.
  pm.SetBalloonTarget(0);
  EXPECT_EQ(0u, pm.balloon_pages());
  EXPECT_EQ(64u, pm.free_pages());
}

TEST_F(PhysTest, BalloonHonorsFreeReserveFloor) {
  pm.set_free_reserve(16);
  pm.SetBalloonTarget(100);
  // The floor is max(free_min, free_reserve, 4): the balloon may not eat
  // the emergency pool the pageout path depends on.
  EXPECT_EQ(16u, pm.free_pages());
  EXPECT_EQ(48u, pm.balloon_pages());
  pm.SetBalloonTarget(0);
  EXPECT_EQ(64u, pm.free_pages());
}

TEST_F(PhysTest, PageAtRoundTripsPfn) {
  phys::Page* p = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, false);
  EXPECT_EQ(p, pm.PageAt(p->pfn));
  pm.FreePage(p);
}

TEST_F(PhysTest, DistinctFramesHaveDistinctStorage) {
  phys::Page* a = pm.AllocPage(phys::OwnerKind::kKernel, this, 0, true);
  phys::Page* b = pm.AllocPage(phys::OwnerKind::kKernel, this, 1, true);
  pm.Data(a)[10] = std::byte{1};
  EXPECT_EQ(std::byte{0}, pm.Data(b)[10]);
  pm.FreePage(a);
  pm.FreePage(b);
}

}  // namespace
