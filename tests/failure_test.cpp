// Failure injection: swap exhaustion, physical memory exhaustion via
// wiring, kernel map-entry pool exhaustion (the §3.2 panic scenario,
// surfaced as an error here), and teardown with resources outstanding.
#include <gtest/gtest.h>

#include "src/harness/world.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

class FailureTest : public ::testing::TestWithParam<VmKind> {};

TEST_P(FailureTest, SwapExhaustionSurfacesAsNoMem) {
  WorldConfig cfg;
  cfg.ram_pages = 64;
  cfg.swap_slots = 32;  // tiny swap: total backing < working set
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  const std::size_t npages = 256;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, npages * sim::kPageSize, kern::MapAttrs{}));
  int err = sim::kOk;
  std::size_t written = 0;
  for (; written < npages; ++written) {
    err = w.kernel->TouchWrite(p, a + written * sim::kPageSize, 1, std::byte{1});
    if (err != sim::kOk) {
      break;
    }
  }
  EXPECT_EQ(sim::kErrNoMem, err);
  EXPECT_LT(written, npages);
  EXPECT_GT(written, 32u);  // got past RAM before running out
  // Exhaustion is a capacity failure, not a device failure: no I/O errors
  // were injected and none of the recovery machinery may have fired.
  EXPECT_EQ(0u, w.machine.stats().io_errors_injected);
  EXPECT_EQ(0u, w.machine.stats().pagein_errors);
  EXPECT_EQ(0u, w.machine.stats().pageout_retries);
  EXPECT_EQ(0u, w.machine.stats().bad_slots_remapped);
  // With both RAM and swap full the system genuinely cannot make progress;
  // free a chunk, after which the remaining data must be intact.
  ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, a, 32 * sim::kPageSize));
  std::vector<std::byte> b(1);
  for (std::size_t i = 32; i + 1 < written; i += 3) {
    ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a + i * sim::kPageSize, b)) << i;
    EXPECT_EQ(std::byte{1}, b[0]);
  }
  w.vm->CheckInvariants();
}

TEST_P(FailureTest, WiringEverythingEventuallyFails) {
  WorldConfig cfg;
  cfg.ram_pages = 64;
  cfg.swap_slots = 64;
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();
  int err = sim::kOk;
  int wired_regions = 0;
  for (int i = 0; i < 16; ++i) {
    sim::Vaddr a = 0;
    ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 8 * sim::kPageSize, kern::MapAttrs{}));
    err = w.kernel->Mlock(p, a, 8 * sim::kPageSize);
    if (err != sim::kOk) {
      break;
    }
    ++wired_regions;
  }
  EXPECT_EQ(sim::kErrNoMem, err);
  EXPECT_GT(wired_regions, 2);
  w.vm->CheckInvariants();
}

TEST_P(FailureTest, KernelMapEntryPoolExhaustion) {
  WorldConfig cfg;
  cfg.bsd.kernel_map_entries = 8;
  cfg.uvm.kernel_map_entries = 8;
  World w(GetParam(), cfg);
  kern::MapAttrs attrs;
  int err = sim::kOk;
  int mapped = 0;
  for (int i = 0; i < 32; ++i) {
    sim::Vaddr addr = 0;
    err = w.vm->Map(w.vm->kernel_as(), &addr, sim::kPageSize, nullptr, 0, attrs);
    if (err != sim::kOk) {
      break;
    }
    ++mapped;
  }
  EXPECT_EQ(sim::kErrMapEntryPool, err);
  EXPECT_EQ(8, mapped);
}

TEST_P(FailureTest, FaultOutsideAnyMappingFails) {
  World w(GetParam());
  kern::Proc* p = w.kernel->Spawn();
  EXPECT_EQ(sim::kErrFault, w.vm->Fault(*p->as, 0x6666'0000, sim::Access::kRead));
}

TEST_P(FailureTest, WriteFaultOnReadOnlyFails) {
  World w(GetParam());
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  kern::MapAttrs ro;
  ro.prot = sim::Prot::kRead;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, sim::kPageSize, ro));
  EXPECT_EQ(sim::kErrProt, w.vm->Fault(*p->as, a, sim::Access::kWrite));
  EXPECT_EQ(sim::kOk, w.vm->Fault(*p->as, a, sim::Access::kRead));
}

TEST_P(FailureTest, ExitWithEverythingOutstandingCleansUp) {
  WorldConfig cfg;
  cfg.ram_pages = 256;
  World w(GetParam(), cfg);
  std::size_t free_at_start = w.pm.free_pages();
  {
    kern::Proc* p = w.kernel->Spawn();
    sim::Vaddr a = 0;
    ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 32 * sim::kPageSize, kern::MapAttrs{}));
    w.kernel->TouchWrite(p, a, 32 * sim::kPageSize, std::byte{1});
    ASSERT_EQ(sim::kOk, w.kernel->Mlock(p, a + sim::kPageSize, 4 * sim::kPageSize));
    w.fs.CreateFilePattern("/f", 8 * sim::kPageSize);
    sim::Vaddr fa = 0;
    ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &fa, 8 * sim::kPageSize, "/f", 0, kern::MapAttrs{}));
    w.kernel->TouchWrite(p, fa, 8 * sim::kPageSize, std::byte{2});
    kern::Proc* c = w.kernel->Fork(p);
    w.kernel->TouchWrite(c, a, 8 * sim::kPageSize, std::byte{3});
    w.kernel->Exit(c);
    w.kernel->Exit(p);
  }
  // All anonymous memory returned. (File pages may legitimately stay
  // cached — BSD VM in its object cache, UVM on the vnode.)
  std::size_t cached_file_pages = 8;
  EXPECT_GE(w.pm.free_pages() + cached_file_pages, free_at_start);
  EXPECT_EQ(0u, w.swap.used_slots());
  w.vm->CheckInvariants();
}

TEST_P(FailureTest, SwapFullThenFreedRecovers) {
  WorldConfig cfg;
  cfg.ram_pages = 64;
  cfg.swap_slots = 64;
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 200 * sim::kPageSize, kern::MapAttrs{}));
  std::size_t written = 0;
  while (written < 200 &&
         w.kernel->TouchWrite(p, a + written * sim::kPageSize, 1, std::byte{1}) == sim::kOk) {
    ++written;
  }
  ASSERT_LT(written, 200u);  // hit the wall
  // Free the whole mapping (releasing its frames and swap slots)...
  ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, a, 200 * sim::kPageSize));
  // ...and the system can make progress again.
  sim::Vaddr b = 0;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &b, 16 * sim::kPageSize, kern::MapAttrs{}));
  EXPECT_EQ(sim::kOk, w.kernel->TouchWrite(p, b, 16 * sim::kPageSize, std::byte{2}));
  w.vm->CheckInvariants();
}

TEST_P(FailureTest, PageinErrorSurfacesAsEIO) {
  WorldConfig cfg;
  cfg.ram_pages = 64;
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  const std::size_t npages = 48;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, npages * sim::kPageSize, kern::MapAttrs{}));
  for (std::size_t i = 0; i < npages; ++i) {
    ASSERT_EQ(sim::kOk,
              w.kernel->TouchWrite(p, a + i * sim::kPageSize, 1, static_cast<std::byte>(i)));
  }
  // Push everything to swap, then make the next swap read fail once.
  w.vm->PageDaemon(w.pm.total_pages());
  sim::FaultPlan plan;
  plan.fail_reads.push_back(sim::FaultSpec{1, /*permanent=*/false});
  w.machine.faults().SetPlan(sim::IoDevice::kSwapDisk, plan);
  std::vector<std::byte> b(1);
  EXPECT_EQ(sim::kErrIO, w.kernel->ReadMem(p, a, b))
      << "expected " << sim::ErrName(sim::kErrIO) << " from the failed pagein";
  EXPECT_EQ(1u, w.machine.stats().pagein_errors);
  EXPECT_EQ(1u, w.machine.stats().io_errors_injected);
  // The fault was transient and the swap copy untouched: the very next
  // access recovers, and every page still has its data.
  for (std::size_t i = 0; i < npages; ++i) {
    ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a + i * sim::kPageSize, b)) << i;
    EXPECT_EQ(static_cast<std::byte>(i), b[0]) << i;
  }
  w.vm->CheckInvariants();
}

TEST_P(FailureTest, PageoutRetriesUntilSuccess) {
  WorldConfig cfg;
  cfg.ram_pages = 64;
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();
  sim::Vaddr a = 0;
  const std::size_t npages = 48;
  ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, npages * sim::kPageSize, kern::MapAttrs{}));
  for (std::size_t i = 0; i < npages; ++i) {
    ASSERT_EQ(sim::kOk,
              w.kernel->TouchWrite(p, a + i * sim::kPageSize, 1, static_cast<std::byte>(i)));
  }
  // The next two swap writes fail transiently; the pagedaemon must retry
  // with backoff and still get the pages out.
  sim::FaultPlan plan;
  plan.fail_writes.push_back(sim::FaultSpec{1, /*permanent=*/false});
  plan.fail_writes.push_back(sim::FaultSpec{2, /*permanent=*/false});
  w.machine.faults().SetPlan(sim::IoDevice::kSwapDisk, plan);
  sim::Nanoseconds before = w.machine.clock().now();
  std::size_t freed = w.vm->PageDaemon(w.pm.total_pages());
  EXPECT_GT(freed, 0u);
  EXPECT_GT(w.machine.stats().pageout_retries, 0u);
  EXPECT_GE(w.machine.stats().io_errors_injected, 2u);
  // Backoff is charged to the virtual clock.
  EXPECT_GE(w.machine.clock().now() - before, w.machine.cost().io_retry_backoff_ns);
  // No data was lost along the way.
  std::vector<std::byte> b(1);
  for (std::size_t i = 0; i < npages; ++i) {
    ASSERT_EQ(sim::kOk, w.kernel->ReadMem(p, a + i * sim::kPageSize, b)) << i;
    EXPECT_EQ(static_cast<std::byte>(i), b[0]) << i;
  }
  w.vm->CheckInvariants();
}

// Terminate-time flushes cannot report failure to anyone: when the
// filesystem disk is permanently dead, the dirty pages are lost. That loss
// must be visible — every dropped page counts in Stats::pageout_drops, and
// the retry passes leading up to the drop count in pageout_retries (both
// VMs, one shared VmTuning::max_pageout_retries policy).
TEST_P(FailureTest, TerminateFlushDropsAreCounted) {
  WorldConfig cfg;
  cfg.bsd.object_cache_limit = 0;  // BSD: unmap terminates the object at once
  cfg.max_vnodes = 2;              // UVM: two more lookups recycle the vnode
  World w(GetParam(), cfg);
  kern::Proc* p = w.kernel->Spawn();

  const std::size_t npages = 8;
  w.fs.CreateFilePattern("/dirty", npages * sim::kPageSize);
  sim::Vaddr fa = 0;
  kern::MapAttrs shared;
  shared.shared = true;
  ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &fa, npages * sim::kPageSize, "/dirty", 0, shared));
  ASSERT_EQ(sim::kOk, w.kernel->TouchWrite(p, fa, npages * sim::kPageSize, std::byte{0x66}));

  // The filesystem disk dies before anything is written back: every write
  // from here on fails (probability 1/1), so no retry can ever succeed.
  sim::FaultPlan plan;
  plan.write_num = 1;
  plan.write_den = 1;
  w.machine.faults().SetPlan(sim::IoDevice::kFilesystemDisk, plan);

  // BSD VM: Munmap drops the last reference; with a zero-entry object
  // cache the vnode object is terminated (and flushed) immediately.
  ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, fa, npages * sim::kPageSize));
  // UVM: the dirty pages stay cached on the vnode. Looking up two more
  // files overflows the two-entry vnode table and recycles "/dirty",
  // terminating (and flushing) its attachment. Harmless for BSD: these
  // mappings are never dirtied.
  for (const char* name : {"/g", "/h"}) {
    w.fs.CreateFilePattern(name, sim::kPageSize);
    sim::Vaddr va = 0;
    ASSERT_EQ(sim::kOk, w.kernel->Mmap(p, &va, sim::kPageSize, name, 0, kern::MapAttrs{}));
    ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, va, sim::kPageSize));
  }

  const sim::Stats& s = w.machine.stats();
  EXPECT_EQ(npages, s.pageout_drops) << "every dirty page silently lost must be counted";
  // The drop came only after the full shared retry budget was spent.
  const int budget = GetParam() == VmKind::kBsd ? cfg.bsd.tuning.max_pageout_retries
                                                : cfg.uvm.tuning.max_pageout_retries;
  EXPECT_GE(s.pageout_retries, static_cast<std::uint64_t>(budget));
  EXPECT_GT(s.io_errors_injected, static_cast<std::uint64_t>(budget));
  w.vm->CheckInvariants();
}

TEST(PartialUnmapTest, UvmFreesAnonsOnPartialUnmapBsdCannot) {
  // Real UVM's amap_unadd releases the anons of a partially unmapped range
  // at once; real BSD VM keeps the pages inside the (still referenced)
  // anonymous object until the whole object dies. Both behaviours are
  // reproduced faithfully.
  {
    World w(VmKind::kUvm);
    auto* vm = static_cast<uvm::Uvm*>(w.vm.get());
    kern::Proc* p = w.kernel->Spawn();
    sim::Vaddr a = 0;
    ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 16 * sim::kPageSize, kern::MapAttrs{}));
    w.kernel->TouchWrite(p, a, 16 * sim::kPageSize, std::byte{1});
    ASSERT_EQ(16u, vm->LiveAnons());
    ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, a + 4 * sim::kPageSize, 8 * sim::kPageSize));
    EXPECT_EQ(8u, vm->LiveAnons());
    w.vm->CheckInvariants();
  }
  {
    World w(VmKind::kBsd);
    auto* vm = static_cast<bsdvm::BsdVm*>(w.vm.get());
    kern::Proc* p = w.kernel->Spawn();
    sim::Vaddr a = 0;
    ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(p, &a, 16 * sim::kPageSize, kern::MapAttrs{}));
    w.kernel->TouchWrite(p, a, 16 * sim::kPageSize, std::byte{1});
    ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, a + 4 * sim::kPageSize, 8 * sim::kPageSize));
    EXPECT_EQ(16u, vm->TotalAnonPages());  // the object still holds them all
    // Only full teardown releases them.
    ASSERT_EQ(sim::kOk, w.kernel->Munmap(p, a, 16 * sim::kPageSize));
    EXPECT_EQ(0u, vm->TotalAnonPages());
    w.vm->CheckInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(BothVms, FailureTest, ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

}  // namespace
