// Property test over file-backed memory: random sequences of shared and
// private file mappings, anonymous mappings, writes, reads, forks, msync,
// and memory pressure — validated against a reference model of each file's
// current contents and each process's private COW overlays. This exercises
// the full two-level (amap/object) and chain (shadow/object) lookup paths
// with file data underneath.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/harness/world.h"
#include "src/sim/rng.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

constexpr std::size_t kFiles = 4;
constexpr std::size_t kFilePages = 16;

struct MappedPage {
  bool is_file = false;
  bool shared = false;
  std::size_t file = 0;
  std::size_t fidx = 0;                    // page index within the file
  std::optional<std::byte> private_value;  // written through a private mapping
};

struct ModelProc {
  kern::Proc* proc;
  std::map<sim::Vaddr, MappedPage> pages;
};

class FilePropertyTest : public ::testing::TestWithParam<std::tuple<VmKind, std::uint64_t>> {};

TEST_P(FilePropertyTest, RandomFileOpsMatchModel) {
  auto [kind, seed] = GetParam();
  WorldConfig cfg;
  cfg.ram_pages = 768;  // small enough to force reclaim of file pages
  World w(kind, cfg);
  sim::Rng rng(seed);

  // File content model: the authoritative byte of each page of each file.
  std::vector<std::vector<std::byte>> files(kFiles);
  for (std::size_t f = 0; f < kFiles; ++f) {
    std::string name = "/pf" + std::to_string(f);
    w.fs.CreateFilePattern(name, kFilePages * sim::kPageSize);
    files[f].resize(kFilePages);
    for (std::size_t i = 0; i < kFilePages; ++i) {
      files[f][i] = vfs::Filesystem::PatternByte(name, i * sim::kPageSize);
    }
  }

  std::vector<ModelProc> procs;
  procs.push_back(ModelProc{w.kernel->Spawn(), {}});

  auto expected = [&](const MappedPage& mp) {
    if (mp.private_value.has_value()) {
      return *mp.private_value;
    }
    if (mp.is_file) {
      return files[mp.file][mp.fidx];
    }
    return std::byte{0};
  };

  auto random_page = [&](ModelProc& mp) -> std::optional<sim::Vaddr> {
    if (mp.pages.empty()) {
      return std::nullopt;
    }
    auto it = mp.pages.begin();
    std::advance(it, static_cast<long>(rng.Below(mp.pages.size())));
    return it->first;
  };

  for (int op = 0; op < 900; ++op) {
    ModelProc& mp = procs[rng.Below(procs.size())];
    switch (rng.Below(11)) {
      case 0: {  // map a file range, shared or private
        std::size_t f = rng.Below(kFiles);
        std::size_t off = rng.Below(kFilePages - 1);
        std::size_t n = rng.Range(1, kFilePages - off);
        bool shared = rng.Chance(1, 2);
        kern::MapAttrs attrs;
        attrs.shared = shared;
        sim::Vaddr addr = 0;
        ASSERT_EQ(sim::kOk, w.kernel->Mmap(mp.proc, &addr, n * sim::kPageSize,
                                           "/pf" + std::to_string(f), off * sim::kPageSize,
                                           attrs));
        for (std::size_t i = 0; i < n; ++i) {
          MappedPage pg;
          pg.is_file = true;
          pg.shared = shared;
          pg.file = f;
          pg.fidx = off + i;
          mp.pages[addr + i * sim::kPageSize] = pg;
        }
        break;
      }
      case 1: {  // map anonymous
        std::uint64_t n = rng.Range(1, 8);
        sim::Vaddr addr = 0;
        ASSERT_EQ(sim::kOk, w.kernel->MmapAnon(mp.proc, &addr, n * sim::kPageSize,
                                               kern::MapAttrs{}));
        for (std::uint64_t i = 0; i < n; ++i) {
          mp.pages[addr + i * sim::kPageSize] = MappedPage{};
        }
        break;
      }
      case 2: {  // munmap
        auto va = random_page(mp);
        if (!va.has_value()) {
          break;
        }
        std::uint64_t n = rng.Range(1, 3);
        ASSERT_EQ(sim::kOk, w.kernel->Munmap(mp.proc, *va, n * sim::kPageSize));
        for (std::uint64_t i = 0; i < n; ++i) {
          mp.pages.erase(*va + i * sim::kPageSize);
        }
        break;
      }
      case 3:
      case 4: {  // write a page
        auto va = random_page(mp);
        if (!va.has_value()) {
          break;
        }
        auto fill = static_cast<std::byte>(rng.Below(256));
        ASSERT_EQ(sim::kOk, w.kernel->TouchWrite(mp.proc, *va, 1, fill));
        MappedPage& pg = mp.pages[*va];
        if (pg.is_file && pg.shared) {
          files[pg.file][pg.fidx] = fill;  // visible to every shared mapper
        } else {
          pg.private_value = fill;
        }
        break;
      }
      case 5:
      case 6:
      case 7: {  // read-verify
        auto va = random_page(mp);
        if (!va.has_value()) {
          break;
        }
        std::vector<std::byte> b(1);
        ASSERT_EQ(sim::kOk, w.kernel->ReadMem(mp.proc, *va, b));
        ASSERT_EQ(expected(mp.pages[*va]), b[0])
            << "op " << op << " va " << std::hex << *va;
        break;
      }
      case 8: {  // fork: child copies the view (private COW; shared shares)
        if (procs.size() >= 5) {
          break;
        }
        kern::Proc* child = w.kernel->Fork(mp.proc);
        procs.push_back(ModelProc{child, mp.pages});
        break;
      }
      case 9: {  // exit
        if (procs.size() <= 1) {
          break;
        }
        std::size_t idx = rng.Below(procs.size());
        w.kernel->Exit(procs[idx].proc);
        procs.erase(procs.begin() + static_cast<long>(idx));
        break;
      }
      case 10: {  // msync + memory pressure
        auto va = random_page(mp);
        if (va.has_value()) {
          ASSERT_EQ(sim::kOk, w.kernel->Msync(mp.proc, *va, sim::kPageSize));
        }
        if (rng.Chance(1, 3)) {
          w.vm->PageDaemon(w.pm.free_pages() + rng.Range(16, 96));
        }
        break;
      }
    }
    if (op % 150 == 149) {
      w.vm->CheckInvariants();
    }
  }

  // Final sweep over every process and page.
  for (ModelProc& mp : procs) {
    for (const auto& [va, pg] : mp.pages) {
      std::vector<std::byte> b(1);
      ASSERT_EQ(sim::kOk, w.kernel->ReadMem(mp.proc, va, b));
      ASSERT_EQ(expected(pg), b[0]) << "final sweep va " << std::hex << va;
    }
  }
  // And the files on disk must match the model after a full flush.
  for (ModelProc& mp : procs) {
    w.kernel->Exit(mp.proc);
  }
  w.vm->PageDaemon(w.pm.total_pages());
  w.vm->CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FilePropertyTest,
    ::testing::Combine(::testing::Values(VmKind::kBsd, VmKind::kUvm),
                       ::testing::Values(21ull, 22ull, 23ull, 24ull, 25ull, 26ull)),
    [](const ::testing::TestParamInfo<std::tuple<VmKind, std::uint64_t>>& param_info) {
      return std::string(harness::VmKindName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
