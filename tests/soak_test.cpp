// Integrity soak under injected I/O faults: randomized anonymous-memory
// workloads (mmap, write, read-verify, fork, exit, pagedaemon pressure) run
// on both VM systems while the fault injector fails swap I/O underneath the
// pagers. The workload is checked against a flat reference model — every
// read, and a final byte-exact sweep — and VM invariants are verified
// throughout, so any recovery path that corrupts or loses a page fails the
// test. Everything is driven by seeded RNGs and the virtual clock, so each
// scenario (including the fault sequence) is exactly reproducible.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "src/harness/dump.h"
#include "src/harness/world.h"
#include "src/sim/rng.h"

namespace {

using harness::VmKind;
using harness::World;
using harness::WorldConfig;

// Per-process reference model: page-aligned va -> first byte of the page.
using ProcModel = std::map<sim::Vaddr, std::byte>;

struct ModelProc {
  kern::Proc* proc;
  ProcModel pages;
};

// Counters compared between runs for the determinism property.
struct SoakOutcome {
  std::uint64_t io_errors_injected = 0;
  std::uint64_t pagein_errors = 0;
  std::uint64_t pageout_retries = 0;
  std::uint64_t pageout_drops = 0;
  std::uint64_t bad_slots_remapped = 0;
  std::uint64_t faults = 0;
  std::uint64_t swap_ops = 0;
  sim::Nanoseconds virtual_ns = 0;

  bool operator==(const SoakOutcome&) const = default;
};

std::string Describe(const World& w) {
  std::ostringstream os;
  kern::DumpRecoveryStats(os, w.machine);
  return os.str();
}

// Runs the soak workload on one freshly built world with `plan` installed
// on the swap disk. All assertions (model match, invariants) fire inside.
SoakOutcome RunSoak(VmKind kind, const sim::FaultPlan& plan, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.ram_pages = 256;  // 1 MB: heavy paging against the swap device
  cfg.swap_slots = 8192;
  World w(kind, cfg);
  w.machine.faults().Reseed(seed * 0x9e37 + 1);
  w.machine.faults().SetPlan(sim::IoDevice::kSwapDisk, plan);
  sim::Rng rng(seed);

  std::vector<ModelProc> procs;
  procs.push_back(ModelProc{w.kernel->Spawn(), {}});

  constexpr int kOps = 900;
  constexpr std::size_t kMaxProcs = 4;

  auto random_mapped_page = [&](ModelProc& mp) -> std::optional<sim::Vaddr> {
    if (mp.pages.empty()) {
      return std::nullopt;
    }
    auto it = mp.pages.begin();
    std::advance(it, static_cast<long>(rng.Below(mp.pages.size())));
    return it->first;
  };

  for (int op = 0; op < kOps; ++op) {
    ModelProc& mp = procs[rng.Below(procs.size())];
    switch (rng.Below(10)) {
      case 0: {  // mmap a fresh anonymous region
        std::uint64_t npages = rng.Range(1, 16);
        sim::Vaddr addr = 0;
        EXPECT_EQ(sim::kOk,
                  w.kernel->MmapAnon(mp.proc, &addr, npages * sim::kPageSize, kern::MapAttrs{}));
        for (std::uint64_t i = 0; i < npages; ++i) {
          mp.pages[addr + i * sim::kPageSize] = std::byte{0};
        }
        break;
      }
      case 1:
      case 2:
      case 3:
      case 4: {  // write one page
        auto va = random_mapped_page(mp);
        if (!va.has_value()) {
          break;
        }
        auto fill = static_cast<std::byte>(rng.Below(256));
        EXPECT_EQ(sim::kOk, w.kernel->TouchWrite(mp.proc, *va, 1, fill)) << Describe(w);
        mp.pages[*va] = fill;
        break;
      }
      case 5:
      case 6: {  // read-verify one page against the model
        auto va = random_mapped_page(mp);
        if (!va.has_value()) {
          break;
        }
        std::vector<std::byte> b(1);
        EXPECT_EQ(sim::kOk, w.kernel->ReadMem(mp.proc, *va, b)) << Describe(w);
        EXPECT_EQ(mp.pages[*va], b[0]) << "model mismatch at " << std::hex << *va;
        break;
      }
      case 7: {  // fork: COW — the child starts with the parent's view
        if (procs.size() >= kMaxProcs) {
          break;
        }
        kern::Proc* child = w.kernel->Fork(mp.proc);
        procs.push_back(ModelProc{child, mp.pages});
        break;
      }
      case 8: {  // exit (keep at least one process)
        if (procs.size() <= 1) {
          break;
        }
        std::size_t idx = rng.Below(procs.size());
        w.kernel->Exit(procs[idx].proc);
        procs.erase(procs.begin() + static_cast<long>(idx));
        break;
      }
      case 9: {  // memory pressure: pageouts run into the fault plan here
        w.vm->PageDaemon(w.pm.free_pages() + rng.Range(16, 64));
        w.vm->CheckInvariants();  // every recovery leaves a sound system
        break;
      }
    }
    if (op % 64 == 63) {
      w.vm->PageDaemon(48);  // steady background pressure
      w.vm->CheckInvariants();
    }
  }

  // Final sweep: every page of every live process, byte-exact.
  for (ModelProc& mp : procs) {
    for (const auto& [va, value] : mp.pages) {
      std::vector<std::byte> b(1);
      EXPECT_EQ(sim::kOk, w.kernel->ReadMem(mp.proc, va, b)) << Describe(w);
      EXPECT_EQ(value, b[0]) << "final sweep mismatch at " << std::hex << va << "\n"
                             << Describe(w);
    }
  }
  w.vm->CheckInvariants();

  const sim::Stats& s = w.machine.stats();
  return SoakOutcome{s.io_errors_injected, s.pagein_errors, s.pageout_retries,
                     s.pageout_drops,      s.bad_slots_remapped, s.faults,
                     s.swap_ops,           w.machine.clock().now()};
}

class SoakTest : public ::testing::TestWithParam<VmKind> {};

// Transient write faults on the swap disk: every pageout has a 1-in-8
// chance of failing once. The pagedaemon's retry/backoff path must absorb
// all of it with zero user-visible damage.
TEST_P(SoakTest, TransientSwapWriteFaultsRecoverWithoutDataLoss) {
  sim::FaultPlan plan;
  plan.write_num = 1;
  plan.write_den = 8;
  SoakOutcome out = RunSoak(GetParam(), plan, /*seed=*/101);
  EXPECT_GT(out.io_errors_injected, 0u);
  EXPECT_GT(out.pageout_retries, 0u) << "workload never exercised the retry path";
  EXPECT_EQ(0u, out.bad_slots_remapped);  // transient-only plan
  EXPECT_EQ(0u, out.pageout_drops);  // transient faults never lose pages
}

// Permanent slot failures (half of injected write faults) force bad-block
// remapping: the swap layer retires the slot and moves the cluster, and the
// workload must still complete byte-exact.
TEST_P(SoakTest, PermanentSwapFaultsRemapWithoutDataLoss) {
  sim::FaultPlan plan;
  plan.write_num = 1;
  plan.write_den = 12;
  plan.permanent_num = 1;
  plan.permanent_den = 2;
  SoakOutcome out = RunSoak(GetParam(), plan, /*seed=*/202);
  EXPECT_GT(out.io_errors_injected, 0u);
  EXPECT_GT(out.bad_slots_remapped, 0u) << "workload never exercised remapping";
  // Permanent swap faults are recovered by remapping, never by dropping:
  // the byte-exact final sweep above is only honest if nothing was lost.
  EXPECT_EQ(0u, out.pageout_drops);
}

// Same seed + same plan => bit-identical behaviour, including the fault
// sequence, every counter, and the virtual clock.
TEST_P(SoakTest, SameSeedAndPlanAreDeterministic) {
  sim::FaultPlan plan;
  plan.write_num = 1;
  plan.write_den = 10;
  plan.permanent_num = 1;
  plan.permanent_den = 3;
  SoakOutcome a = RunSoak(GetParam(), plan, /*seed=*/303);
  SoakOutcome b = RunSoak(GetParam(), plan, /*seed=*/303);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.io_errors_injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothVms, SoakTest, ::testing::Values(VmKind::kBsd, VmKind::kUvm),
                         [](const ::testing::TestParamInfo<VmKind>& param_info) {
                           return harness::VmKindName(param_info.param);
                         });

}  // namespace
