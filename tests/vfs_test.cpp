// Unit tests for the vnode layer: filesystem namespace, page-granular file
// I/O with cost accounting, vnode cache LRU recycling, and the attachment
// (uvm_vnp_terminate) hook.
#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/vfs/filesystem.h"

namespace {

class VfsTest : public ::testing::Test {
 protected:
  sim::Machine machine;
  vfs::Filesystem fs{machine, /*max_vnodes=*/4};
};

TEST_F(VfsTest, OpenMissingFileFails) { EXPECT_EQ(nullptr, fs.Open("/nope")); }

TEST_F(VfsTest, CreateAndOpen) {
  fs.CreateFilePattern("/a", 2 * sim::kPageSize);
  ASSERT_TRUE(fs.Exists("/a"));
  vfs::Vnode* vn = fs.Open("/a");
  ASSERT_NE(nullptr, vn);
  EXPECT_EQ("/a", vn->name());
  EXPECT_EQ(2 * sim::kPageSize, vn->size());
  EXPECT_EQ(2u, vn->size_pages());
  EXPECT_EQ(1, vn->usecount());
  fs.Close(vn);
  EXPECT_EQ(0, vn->usecount());
}

TEST_F(VfsTest, ReadPagesReturnsPatternAndCharges) {
  fs.CreateFilePattern("/a", 3 * sim::kPageSize);
  vfs::Vnode* vn = fs.Open("/a");
  std::vector<std::byte> buf(2 * sim::kPageSize);
  sim::Nanoseconds before = machine.clock().now();
  std::size_t valid = 0;
  ASSERT_EQ(sim::kOk, vn->ReadPages(sim::kPageSize, 2, buf, &valid));
  EXPECT_EQ(2u, valid);
  EXPECT_EQ(machine.cost().disk_op_ns + 2 * machine.cost().disk_page_ns,
            machine.clock().now() - before);
  EXPECT_EQ(1u, machine.stats().disk_ops);
  EXPECT_EQ(2u, machine.stats().disk_pages_read);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(vfs::Filesystem::PatternByte("/a", sim::kPageSize + i), buf[i]) << i;
  }
  fs.Close(vn);
}

TEST_F(VfsTest, ReadBeyondEofZeroFills) {
  fs.CreateFilePattern("/a", sim::kPageSize + 100);
  vfs::Vnode* vn = fs.Open("/a");
  std::vector<std::byte> buf(2 * sim::kPageSize, std::byte{0xff});
  std::size_t valid = 0;
  ASSERT_EQ(sim::kOk, vn->ReadPages(sim::kPageSize, 2, buf, &valid));
  EXPECT_EQ(1u, valid);  // second page entirely past EOF
  // Partial page: 100 bytes of data then zeros.
  EXPECT_EQ(vfs::Filesystem::PatternByte("/a", sim::kPageSize + 99), buf[99]);
  EXPECT_EQ(std::byte{0}, buf[100]);
  EXPECT_EQ(std::byte{0}, buf[sim::kPageSize]);
  fs.Close(vn);
}

TEST_F(VfsTest, WritePagesPersistToFileData) {
  fs.CreateFilePattern("/a", 2 * sim::kPageSize);
  vfs::Vnode* vn = fs.Open("/a");
  std::vector<std::byte> out(sim::kPageSize, std::byte{0x66});
  ASSERT_EQ(sim::kOk, vn->WritePages(sim::kPageSize, 1, out));
  EXPECT_EQ(1u, machine.stats().disk_pages_written);
  std::vector<std::byte> back(sim::kPageSize);
  vn->ReadPages(sim::kPageSize, 1, back);
  EXPECT_EQ(std::byte{0x66}, back[0]);
  EXPECT_EQ(std::byte{0x66}, back[sim::kPageSize - 1]);
  fs.Close(vn);
}

TEST_F(VfsTest, ReopenWhileCachedHitsCache) {
  fs.CreateFilePattern("/a", sim::kPageSize);
  vfs::Vnode* vn = fs.Open("/a");
  fs.Close(vn);
  EXPECT_EQ(1u, fs.cache().cached_vnodes());
  vfs::Vnode* again = fs.Open("/a");
  EXPECT_EQ(vn, again);  // same vnode identity
  EXPECT_EQ(1u, machine.stats().vnode_cache_hits);
  EXPECT_EQ(0u, fs.cache().cached_vnodes());
  fs.Close(again);
}

TEST_F(VfsTest, LruRecyclesOldestUnreferenced) {
  for (int i = 0; i < 4; ++i) {
    fs.CreateFilePattern("/f" + std::to_string(i), sim::kPageSize);
    fs.Close(fs.Open("/f" + std::to_string(i)));
  }
  EXPECT_EQ(4u, fs.cache().live_vnodes());
  // Table is full; opening a fifth recycles /f0 (the LRU).
  fs.CreateFilePattern("/f4", sim::kPageSize);
  vfs::Vnode* v4 = fs.Open("/f4");
  ASSERT_NE(nullptr, v4);
  EXPECT_EQ(1u, machine.stats().vnode_recycles);
  EXPECT_EQ(nullptr, fs.cache().Peek("/f0"));
  EXPECT_NE(nullptr, fs.cache().Peek("/f1"));
  fs.Close(v4);
}

TEST_F(VfsTest, ReferencedVnodesAreNeverRecycled) {
  std::vector<vfs::Vnode*> held;
  for (int i = 0; i < 4; ++i) {
    fs.CreateFilePattern("/f" + std::to_string(i), sim::kPageSize);
    held.push_back(fs.Open("/f" + std::to_string(i)));
  }
  fs.CreateFilePattern("/f4", sim::kPageSize);
  EXPECT_EQ(nullptr, fs.Open("/f4"));  // all vnodes pinned
  for (vfs::Vnode* vn : held) {
    fs.Close(vn);
  }
  EXPECT_NE(nullptr, fs.Open("/f4"));
}

class CountingAttachment : public vfs::VnodeAttachment {
 public:
  explicit CountingAttachment(int* counter) : counter_(counter) {}
  void Terminate(vfs::Vnode&) override { ++*counter_; }

 private:
  int* counter_;
};

TEST_F(VfsTest, RecycleInvokesTerminateHookOnce) {
  int terminated = 0;
  fs.CreateFilePattern("/a", sim::kPageSize);
  vfs::Vnode* vn = fs.Open("/a");
  vn->set_attachment(std::make_unique<CountingAttachment>(&terminated));
  fs.Close(vn);
  // Force recycling by filling the table.
  for (int i = 0; i < 4; ++i) {
    fs.CreateFilePattern("/g" + std::to_string(i), sim::kPageSize);
    fs.Close(fs.Open("/g" + std::to_string(i)));
  }
  EXPECT_EQ(1, terminated);
}

TEST_F(VfsTest, RefUnrefNest) {
  fs.CreateFilePattern("/a", sim::kPageSize);
  vfs::Vnode* vn = fs.Open("/a");
  fs.cache().Ref(vn);
  EXPECT_EQ(2, vn->usecount());
  fs.cache().Unref(vn);
  EXPECT_EQ(1, vn->usecount());
  EXPECT_EQ(0u, fs.cache().cached_vnodes());
  fs.Close(vn);
  EXPECT_EQ(1u, fs.cache().cached_vnodes());
}

TEST_F(VfsTest, TableFullWithAllReferencedReturnsTypedError) {
  for (int i = 0; i < 5; ++i) {
    fs.CreateFilePattern("/f" + std::to_string(i), sim::kPageSize);
  }
  std::vector<vfs::Vnode*> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(fs.Open("/f" + std::to_string(i)));
    ASSERT_NE(nullptr, held.back());
  }
  // Every vnode referenced, nothing on the LRU: the fifth open must fail
  // with kErrNoVnode (not kErrNoEnt, and not a fatal assert) and count it.
  int err = 0;
  EXPECT_EQ(nullptr, fs.Open("/f4", &err));
  EXPECT_EQ(sim::kErrNoVnode, err);
  EXPECT_EQ(1u, machine.stats().vnode_table_full);
  // A missing file is still distinguished from an exhausted table.
  err = 0;
  EXPECT_EQ(nullptr, fs.Open("/nope", &err));
  EXPECT_EQ(sim::kErrNoEnt, err);
  EXPECT_EQ(1u, machine.stats().vnode_table_full);
  // Releasing any reference makes that vnode recyclable and the open
  // succeeds again.
  fs.Close(held.back());
  held.pop_back();
  vfs::Vnode* vn = fs.Open("/f4", &err);
  ASSERT_NE(nullptr, vn);
  fs.Close(vn);
  for (vfs::Vnode* h : held) {
    fs.Close(h);
  }
}

TEST_F(VfsTest, PatternByteIsDeterministicPerFile) {
  EXPECT_EQ(vfs::Filesystem::PatternByte("/x", 5), vfs::Filesystem::PatternByte("/x", 5));
  // Different files have different patterns (hash-based, overwhelmingly).
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (vfs::Filesystem::PatternByte("/x", i) != vfs::Filesystem::PatternByte("/y", i)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
