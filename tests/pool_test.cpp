// The slab/arena allocation layer (src/sim/pool.h, DESIGN.md §14):
// determinism guarantees (LIFO reuse, ascending-address magazines), stats
// accounting, size-class routing, heap fallback, the teardown leak assert,
// and whole-simulator double-run identity with every pool engaged.
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/world.h"
#include "src/kern/fleet.h"
#include "src/sim/pool.h"

namespace {

using harness::VmKind;
using harness::World;

struct Widget {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(PoolTest, LifoReuseReturnsLastFreedBlock) {
  sim::Pool<Widget> pool("test.widget");
  Widget* x = pool.New();
  Widget* y = pool.New();
  pool.Delete(x);
  // Strict LIFO: the freed block is the very next one handed out.
  Widget* z = pool.New();
  EXPECT_EQ(x, z);
  pool.Delete(y);
  pool.Delete(z);
}

TEST(PoolTest, MagazinesHandOutAscendingAddresses) {
  sim::Pool<Widget> pool("test.widget");
  std::vector<Widget*> blocks;
  for (std::size_t i = 0; i < sim::PoolBase::kDefaultMagazine; ++i) {
    blocks.push_back(pool.New());
  }
  // One magazine, carved back-to-front onto the freelist: consecutive Gets
  // walk the slab in ascending address order.
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_LT(blocks[i - 1], blocks[i]) << "block " << i << " out of order";
  }
  for (Widget* w : blocks) {
    pool.Delete(w);
  }
}

TEST(PoolTest, StatsCountAllocsFreesRefillsHighWater) {
  sim::Pool<Widget> pool("test.widget");
  const std::size_t mag = sim::PoolBase::kDefaultMagazine;
  std::vector<Widget*> blocks;
  for (std::size_t i = 0; i < mag + 1; ++i) {  // force a second refill
    blocks.push_back(pool.New());
  }
  EXPECT_EQ(pool.stats().allocs, mag + 1);
  EXPECT_EQ(pool.stats().live, mag + 1);
  EXPECT_EQ(pool.stats().high_water, mag + 1);
  EXPECT_EQ(pool.stats().slab_refills, 2u);
  for (Widget* w : blocks) {
    pool.Delete(w);
  }
  EXPECT_EQ(pool.stats().frees, mag + 1);
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().high_water, mag + 1);  // high water is sticky
  // Churn after the drain reuses freelist blocks: no new refill.
  Widget* w = pool.New();
  pool.Delete(w);
  EXPECT_EQ(pool.stats().slab_refills, 2u);
}

TEST(PoolResourceTest, SizeClassesAreSharedAndLifo) {
  sim::PoolResource res("test.resource");
  void* a = res.Allocate(24);  // rounds to the 32-byte class
  void* b = res.Allocate(32);  // same class
  res.Deallocate(a, 24);
  void* c = res.Allocate(30);  // same class again: LIFO returns a
  EXPECT_EQ(a, c);
  EXPECT_EQ(res.size_class_count(), 1u);
  void* d = res.Allocate(2000);  // a large class (1 KB steps)
  EXPECT_EQ(res.size_class_count(), 2u);
  res.Deallocate(b, 32);
  res.Deallocate(c, 30);
  res.Deallocate(d, 2000);
  EXPECT_EQ(res.stats().live, 0u);
  EXPECT_EQ(res.stats().allocs, 4u);
  EXPECT_EQ(res.stats().frees, 4u);
}

TEST(PoolResourceTest, HugeBlocksBypassTheArena) {
  sim::PoolResource res("test.resource");
  const std::size_t huge = sim::PoolResource::kDirectBytes + 1;
  void* p = res.Allocate(huge);
  ASSERT_NE(p, nullptr);
  // Direct allocations are counted but never pin arena chunks.
  EXPECT_EQ(res.arena_bytes(), 0u);
  EXPECT_EQ(res.stats().allocs, 1u);
  res.Deallocate(p, huge);
  EXPECT_EQ(res.stats().live, 0u);
}

TEST(PoolAllocatorTest, NullResourceFallsBackToHeap) {
  // Containers in contexts without a Machine (standalone tests) keep
  // working with a default-constructed allocator.
  using Alloc = sim::PoolAllocator<std::pair<const int, int>>;
  std::map<int, int, std::less<int>, Alloc> m;
  for (int i = 0; i < 100; ++i) {
    m[i] = i * i;
  }
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m[9], 81);
}

TEST(PoolAllocatorTest, PooledMapDrainsItsResource) {
  sim::PoolResource res("test.map_nodes");
  {
    using Alloc = sim::PoolAllocator<std::pair<const int, int>>;
    std::map<int, int, std::less<int>, Alloc> m{Alloc(&res)};
    for (int i = 0; i < 1000; ++i) {
      m[i] = i;
    }
    EXPECT_GE(res.stats().live, 1000u);
  }
  // The map's teardown returned every node; the leak assert in ~PoolResource
  // would abort otherwise.
  EXPECT_EQ(res.stats().live, 0u);
  EXPECT_EQ(res.stats().allocs, res.stats().frees);
}

TEST(PoolDeathTest, LeakedBlockAssertsAtTeardown) {
  EXPECT_DEATH(
      {
        sim::Pool<Widget> pool("test.leaky");
        (void)pool.New();  // never deleted
      },
      "slab blocks still live at teardown");
}

TEST(PoolRegistryTest, MachineRegistryAggregatesVmPools) {
  for (VmKind kind : {VmKind::kBsd, VmKind::kUvm}) {
    World w(kind);
    kern::FleetConfig cfg;
    cfg.target_ops = 20000;
    kern::FleetWorkload fleet(*w.kernel, cfg);
    const kern::FleetCounters& c = fleet.Run();
    EXPECT_GE(c.ops, cfg.target_ops);
    sim::PoolStats agg = w.machine.pools().Aggregate();
    EXPECT_GT(agg.allocs, 0u) << "no metadata allocation went through the pools";
    EXPECT_GT(agg.slab_refills, 0u);
    EXPECT_GE(agg.high_water, agg.live);
    EXPECT_EQ(agg.live, agg.allocs - agg.frees);
    // Named pools appear in creation order; both VMs pool their map entries.
    std::set<std::string> names;
    w.machine.pools().ForEachPool([&](const sim::PoolBase& p) { names.insert(p.name()); });
    w.machine.pools().ForEachResource(
        [&](const sim::PoolResource& r) { names.insert(r.name()); });
    EXPECT_FALSE(names.empty());
  }
}

TEST(PoolDeterminismTest, FleetDoubleRunsAreIdentical) {
  for (VmKind kind : {VmKind::kBsd, VmKind::kUvm}) {
    std::vector<std::uint64_t> fp;
    for (int run = 0; run < 2; ++run) {
      World w(kind);
      kern::FleetConfig cfg;
      cfg.target_ops = 20000;
      kern::FleetWorkload fleet(*w.kernel, cfg);
      const kern::FleetCounters& c = fleet.Run();
      sim::PoolStats agg = w.machine.pools().Aggregate();
      std::vector<std::uint64_t> cur = {
          c.ops,       c.requests,    c.churns,     c.builds,
          c.forks,     c.execs,       c.soft_errors, c.workers_respawned,
          w.machine.clock().now(),    w.machine.stats().faults,
          agg.allocs,  agg.frees,     agg.slab_refills, agg.high_water,
      };
      if (run == 0) {
        fp = cur;
      } else {
        EXPECT_EQ(fp, cur) << "fleet double-run diverged on "
                           << (kind == VmKind::kBsd ? "bsdvm" : "uvm");
      }
    }
  }
}

}  // namespace
