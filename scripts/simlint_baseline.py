#!/usr/bin/env python3
"""Regenerate the simlint findings baseline.

The baseline (tools/simlint/baseline.json) records pre-existing findings so
the simlint CI gate only fails on *new* violations. The intended steady state
is an empty baseline: fix or annotate violations rather than baselining them.
Run this only when intentionally accepting a finding you cannot yet fix, and
say why in the commit message.

Usage: scripts/simlint_baseline.py
"""

import os
import subprocess
import sys


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    simlint = os.path.join(root, "tools", "simlint", "simlint.py")
    res = subprocess.run(
        [sys.executable, simlint, "--all", "--update-baseline", "--root", root]
    )
    if res.returncode != 0:
        return res.returncode
    baseline = os.path.join(root, "tools", "simlint", "baseline.json")
    with open(baseline, "r", encoding="utf-8") as f:
        n = sum(1 for line in f if line.strip().startswith('"'))
    if n:
        print(
            f"simlint_baseline: WARNING — {n} finding(s) baselined. The goal is an\n"
            "empty baseline; prefer fixing the code or annotating with the\n"
            "escape hatches in src/sim/annotations.h.",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
