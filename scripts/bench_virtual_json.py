#!/usr/bin/env python3
"""Run the eight paper benches and emit BENCH_virtual.json.

All of these benches report *virtual* time, so their stdout is
byte-deterministic on any host. This script enforces that and records a
fingerprint per bench:

  1. each bench is run twice; the two outputs must be byte-identical
  2. each bench is run a third time with --trace=FILE; its stdout must be
     byte-identical to the untraced runs (tracing is observer-effect-free)
  3. every trace file must be valid JSON in Chrome-trace shape, and
     tools/traceview must summarize it (exit 0)

With --pressure SPEC, every bench run gets --pressure=SPEC appended: the
same determinism checks then apply to the benches *under memory pressure*
(shrinking/growing phys and swap at virtual-time points, emergency
reserves, the out-of-swap killer). Pressure changes the numbers but must
never change the fact that two runs agree byte-for-byte.

--memfault SPEC and --audit MS forward the same way (--memfault=SPEC,
--audit=MS): seeded memory-error injection plus periodic cross-layer
audits. Containment (discard/refetch, poison kills, loan revocation) and
auditing are part of the simulation, so armed runs must be exactly as
byte-deterministic as clean ones — and any audit violation aborts the
bench at the World shutdown audit, failing this script.

The JSON written to --out maps bench name -> {sha256, lines, bytes,
trace_events}, plus a toolchain-independent "observer_effect": "ok" marker
that only appears if every check above passed.

Usage: bench_virtual_json.py --bindir build/bench --out build/BENCH_virtual.json
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile

BENCHES = [
    "bench_table1_map_entries",
    "bench_table2_fault_counts",
    "bench_table3_map_fault_unmap",
    "bench_fig2_object_cache",
    "bench_fig5_anon_alloc",
    "bench_fig6_fork",
    "bench_sec7_loanout",
    "bench_ablation",
]

HERE = os.path.dirname(os.path.abspath(__file__))
TRACEVIEW = os.path.join(HERE, "..", "tools", "traceview", "traceview.py")


def run(cmd):
    r = subprocess.run(cmd, capture_output=True, text=True)
    if r.returncode != 0:
        sys.stderr.write(f"bench_virtual: {' '.join(cmd)} exited {r.returncode}\n")
        sys.stderr.write(r.stderr)
        sys.exit(1)
    return r.stdout


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bindir", required=True, help="directory with bench binaries")
    ap.add_argument("--out", required=True, help="BENCH_virtual.json to write")
    ap.add_argument("--pressure", default=None, metavar="SPEC",
                    help="pressure plan forwarded to every bench as "
                         "--pressure=SPEC (e.g. '@1ms phys-=7000')")
    ap.add_argument("--memfault", default=None, metavar="SPEC",
                    help="memory-error plan forwarded to every bench as "
                         "--memfault=SPEC (e.g. '@5ms poison random:2')")
    ap.add_argument("--audit", default=None, metavar="MS", type=int,
                    help="run the cross-layer auditor every MS virtual ms, "
                         "forwarded to every bench as --audit=MS")
    args = ap.parse_args()

    extra = []
    if args.pressure:
        extra.append(f"--pressure={args.pressure}")
    if args.memfault:
        extra.append(f"--memfault={args.memfault}")
    if args.audit is not None:
        extra.append(f"--audit={args.audit}")

    result = {}
    failures = []
    for name in BENCHES:
        exe = os.path.join(args.bindir, name)
        first = run([exe] + extra)
        second = run([exe] + extra)
        if first != second:
            failures.append(f"{name}: two untraced runs differ")

        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            trace_path = tmp.name
        try:
            traced = run([exe, f"--trace={trace_path}"] + extra)
            if traced != first:
                failures.append(f"{name}: stdout changed when tracing was enabled")
            with open(trace_path, encoding="utf-8") as f:
                doc = json.load(f)
            events = doc.get("traceEvents", [])
            if not isinstance(events, list):
                failures.append(f"{name}: trace has no traceEvents list")
                events = []
            summary = subprocess.run(
                [sys.executable, TRACEVIEW, "--top", "3", trace_path],
                capture_output=True,
                text=True,
            )
            if summary.returncode != 0:
                failures.append(f"{name}: traceview failed: {summary.stderr.strip()}")
        except json.JSONDecodeError as err:
            failures.append(f"{name}: trace is not valid JSON: {err}")
            events = []
        finally:
            os.unlink(trace_path)

        result[name] = {
            "sha256": hashlib.sha256(first.encode()).hexdigest(),
            "lines": first.count("\n"),
            "bytes": len(first),
            "trace_events": len(events),
        }
        print(f"  {name}: {result[name]['sha256'][:16]} "
              f"({result[name]['lines']} lines, {result[name]['trace_events']} trace events)")

    if failures:
        for f in failures:
            sys.stderr.write(f"bench_virtual: FAIL: {f}\n")
        sys.exit(1)

    result["observer_effect"] = "ok"
    if args.pressure:
        result["pressure_plan"] = args.pressure
    if args.memfault:
        result["memfault_plan"] = args.memfault
    if args.audit is not None:
        result["audit_every_ms"] = args.audit
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} (all runs deterministic, tracing observer-effect-free)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
