#!/bin/sh
# Tier-1 CI: build + full test suite, the same under ASan, then the
# host-time perf harness with its BENCH_host.json checked against the
# committed baseline (deterministic fields exact, speedups against floors;
# see scripts/diff_bench_host.py).
#
# UVM_CI_SKIP_ASAN=1 skips the sanitizer pass (for quick local iteration).
set -eu

cd "$(dirname "$0")/.."

cmake --workflow --preset ci

if [ "${UVM_CI_SKIP_ASAN:-0}" != "1" ]; then
  cmake --workflow --preset ci-asan
fi

./build/bench/bench_host_perf --quick --out build/BENCH_host.json
python3 scripts/diff_bench_host.py BENCH_host.json build/BENCH_host.json
