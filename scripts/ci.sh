#!/bin/sh
# Tier-1 CI: static analysis (simlint), build + full test suite, the same
# under ASan and UBSan, then the host-time perf harness with its
# BENCH_host.json checked against the committed baseline (deterministic
# fields exact, speedups against floors; see scripts/diff_bench_host.py).
#
# UVM_CI_SKIP_ASAN=1  skips the sanitizer passes (quick local iteration).
# UVM_CI_FULL=1       forces full-tree simlint; the default lints the whole
#                     tree too unless UVM_CI_DIFF_REF is set, in which case
#                     only files changed vs that ref are linted (fast local
#                     mode, e.g. UVM_CI_DIFF_REF=origin/main).
set -eu

cd "$(dirname "$0")/.."

# Static-analysis gate first: it is cheap and fails fast. Diff mode still
# builds its context (call graph, layer DAG) from the full tree; only the
# reported files are restricted.
if [ -n "${UVM_CI_DIFF_REF:-}" ] && [ "${UVM_CI_FULL:-0}" != "1" ]; then
  python3 tools/simlint/simlint.py --diff "${UVM_CI_DIFF_REF}"
else
  python3 tools/simlint/simlint.py --all
fi
python3 tools/simlint/tests/run_tests.py
python3 scripts/tests/test_diff_bench_host.py

# Lock-discipline static gate (DESIGN.md §15): the SimLock capability
# annotations become real Clang Thread Safety Analysis checks under the
# `tsa` preset, promoted to errors. Gated on clang++ because the TSA
# attribute macros expand to nothing under GCC — without Clang there is
# nothing to check, not a pass.
if command -v clang++ > /dev/null 2>&1; then
  cmake --workflow --preset ci-tsa
else
  echo "ci.sh: clang++ not found; skipping the thread-safety analysis gate"
fi

# Advisory static analysis: clang-tidy's bugprone-*/concurrency-* checks
# from .clang-tidy (the analyze preset). Never fails CI — findings are
# printed for humans; the enforced subset lives in WarningsAsErrors.
if command -v clang-tidy > /dev/null 2>&1; then
  cmake --workflow --preset ci-analyze     || echo "ci.sh: advisory clang-tidy stage reported findings (non-fatal)"
fi

cmake --workflow --preset ci

if [ "${UVM_CI_SKIP_ASAN:-0}" != "1" ]; then
  cmake --workflow --preset ci-asan
  cmake --workflow --preset ci-ubsan
fi

# Virtual-time benches: byte-deterministic by construction. Runs each of
# the eight paper benches twice (identical output required), once more with
# --trace (identical stdout required: tracing is observer-effect-free),
# validates the Chrome-trace JSON through tools/traceview, and fingerprints
# everything into build/BENCH_virtual.json.
python3 scripts/bench_virtual_json.py --bindir build/bench --out build/BENCH_virtual.json

# Pressure soak: the same eight benches under an adversarial resource plan
# (phys memory shrunk to ~12% at 1ms, swap clamped to less than half at
# 50ms, both restored later). Every bench must still complete on both VMs
# with zero fatal asserts, and the double-run + traced-run byte-identity
# checks above apply unchanged — graceful degradation must be exactly as
# deterministic as the happy path.
python3 scripts/bench_virtual_json.py --bindir build/bench \
  --pressure '@1ms phys-=7000; @50ms swap=14200; @20s swap=32768; @30s phys+=5000' \
  --out build/BENCH_pressure.json

# Containment soak: the same eight benches once more with everything armed
# at once — the adversarial pressure plan above, a seeded memory-error plan
# (random frame poison at three virtual-time points), and the cross-layer
# auditor polling every virtual millisecond. hwpoison containment (discard
# + transparent refetch, late kills, loan revocation) must be exactly as
# byte-deterministic as the happy path, and every bench must finish with a
# clean shutdown audit (any violation panics the World destructor). Runs
# against the ASan build when sanitizers are enabled so containment bugs
# also surface as ASan reports.
SOAK_BINDIR=build/bench
if [ "${UVM_CI_SKIP_ASAN:-0}" != "1" ]; then
  SOAK_BINDIR=build-asan/bench
fi
python3 scripts/bench_virtual_json.py --bindir "$SOAK_BINDIR" \
  --pressure '@1ms phys-=7000; @50ms swap=14200; @20s swap=32768; @30s phys+=5000' \
  --memfault '@2ms poison random:2; @8ms poison random:3; @40ms poison random:2' \
  --audit 1 \
  --out build/BENCH_soak.json

# Server-fleet engine: a million kernel ops per VM (request bursts,
# vnode-cache churn, fork/exec build storms) through the slab-backed
# metadata layer. stdout is fully deterministic (host wall time goes to
# stderr), so plain and pressure-soaked double runs are compared
# byte-for-byte. The pressure plan shrinks physical memory until the fleet's
# resident set no longer fits, forcing pageout/reclaim through the pools.
./build/bench/bench_fleet > build/fleet_a.txt
./build/bench/bench_fleet > build/fleet_b.txt
cmp build/fleet_a.txt build/fleet_b.txt
./build/bench/bench_fleet --pressure='@1ms phys-=7600; @30s phys+=2000' \
  > build/fleet_pressure_a.txt
./build/bench/bench_fleet --pressure='@1ms phys-=7600; @30s phys+=2000' \
  > build/fleet_pressure_b.txt
cmp build/fleet_pressure_a.txt build/fleet_pressure_b.txt

# Deterministic SMP (DESIGN.md §16): the same fleet across 4 virtual CPUs,
# with the per-lock contention table on stdout. Multi-CPU worlds must be
# exactly as byte-reproducible as single-CPU ones — plain and
# pressure-soaked double runs are compared byte-for-byte.
./build/bench/bench_fleet --cpus=4 --locks > build/fleet_smp_a.txt
./build/bench/bench_fleet --cpus=4 --locks > build/fleet_smp_b.txt
cmp build/fleet_smp_a.txt build/fleet_smp_b.txt
./build/bench/bench_fleet --cpus=4 --locks \
  --pressure='@1ms phys-=7600; @30s phys+=2000' > build/fleet_smp_pressure_a.txt
./build/bench/bench_fleet --cpus=4 --locks \
  --pressure='@1ms phys-=7600; @30s phys+=2000' > build/fleet_smp_pressure_b.txt
cmp build/fleet_smp_pressure_a.txt build/fleet_smp_pressure_b.txt

# Chaos engine (DESIGN.md §17): the fleet under a composed fault storm with
# a fuzzed schedule, on a fixed op budget, once per schedule strategy. Every
# armed run must be exactly as byte-reproducible as the happy path — the
# double-run compare is the whole point of deterministic chaos. On failure
# the repro string is printed: a panic's own `repro:` stderr line if there
# is one, otherwise the scenario CLI (which is the repro payload).
chaos_run() {
  tag=$1
  shift
  if ! ./build/bench/bench_chaos "$@" \
      > "build/chaos_${tag}_a.txt" 2> "build/chaos_${tag}_err.txt"; then
    echo "ci.sh: chaos run '${tag}' failed; repro:" >&2
    grep '^repro: ' "build/chaos_${tag}_err.txt" >&2 \
      || echo "ci.sh:   bench_chaos $*" >&2
    return 1
  fi
  if ! ./build/bench/bench_chaos "$@" \
      > "build/chaos_${tag}_b.txt" 2> /dev/null; then
    echo "ci.sh: chaos rerun '${tag}' failed; repro: bench_chaos $*" >&2
    return 1
  fi
  if ! cmp "build/chaos_${tag}_a.txt" "build/chaos_${tag}_b.txt"; then
    echo "ci.sh: chaos double-run '${tag}' diverged; repro: bench_chaos $*" >&2
    return 1
  fi
}
i=0
for sched in rr random:3 burst:5 pct3:7 pb16; do
  i=$((i + 1))
  chaos_run "sched${i}" --ops=60000 --cpus=4 --shared --sched="$sched"
done

# The plan shrinker, subprocess-free: a synthetic failure predicate the
# shrinker must reduce to its minimal scenario, deterministically enough to
# byte-compare, ending in a well-formed repro string.
./build/bench/bench_chaos --shrink-demo > build/chaos_shrink_a.txt
./build/bench/bench_chaos --shrink-demo > build/chaos_shrink_b.txt
cmp build/chaos_shrink_a.txt build/chaos_shrink_b.txt
grep -q '^repro: uvmchaos/v1|' build/chaos_shrink_a.txt

# Malformed plan flags must be rejected at parse time with exit 2 and a
# parser message — never half-armed or silently ignored.
for bad in "--pressure=@1ms warp" "--memfault=@1ms poison wat" \
    "--chaos=wat=3" "--sched=warp9"; do
  rc=0
  ./build/bench/bench_fleet "$bad" > /dev/null 2> build/chaos_cli_err.txt || rc=$?
  if [ "$rc" != 2 ]; then
    echo "ci.sh: bench_fleet '$bad' exited $rc, want 2" >&2
    cat build/chaos_cli_err.txt >&2
    exit 1
  fi
  if ! [ -s build/chaos_cli_err.txt ]; then
    echo "ci.sh: bench_fleet '$bad' rejected without a message" >&2
    exit 1
  fi
done

# Host-perf gate: deterministic fields must match the committed baseline
# exactly, micro speedups must clear their floors, and host timings must
# stay within the regression tolerance (UVM_HOST_TOLERANCE, default +25%).
./build/bench/bench_host_perf --quick --out build/BENCH_host.json
python3 scripts/diff_bench_host.py BENCH_host.json build/BENCH_host.json
