#!/usr/bin/env python3
"""Fixture test for scripts/diff_bench_host.py.

Demonstrates the host-perf regression gate end-to-end without running the
bench binary: a synthetic baseline is compared against (a) an identical
current run (must pass), (b) a run whose host timings are inflated past
the 25% tolerance (must fail and name the regressed fields), (c) a run
with a mutated deterministic counter (must fail), and (d) a run whose
micro speedup slipped below its floor (must fail). Run by ci.sh.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

DIFF = os.path.join(os.path.dirname(__file__), "..", "diff_bench_host.py")

BASELINE = {
    "workloads": {
        "uvm": {
            "map_heavy": {"host_ms": 40.0, "vtime_ns": 40868000,
                          "map_lookup_probes": 320800, "map_hint_hits": 195},
            "fault_heavy": {"host_ms": 50.0, "vtime_ns": 45745560, "faults": 4096},
        },
        "bsdvm": {
            "map_heavy": {"host_ms": 38.0, "vtime_ns": 41171200,
                          "map_lookup_probes": 320800, "map_hint_hits": 195},
        },
    },
    "micro": {
        "map_lookup_1000": {"new_ns_per_op": 160.0, "legacy_ns_per_op": 1300.0,
                            "speedup": 8.1},
        "map_mutate_1000": {"new_ns_per_op": 480.0, "legacy_ns_per_op": 3500.0,
                            "speedup": 7.3},
        "pagestore_lookup_64k": {"new_ns_per_op": 52.0, "legacy_ns_per_op": 570.0,
                                 "speedup": 11.0},
        "pv_churn": {"new_ns_per_op": 58.0, "legacy_ns_per_op": 136.0, "speedup": 2.3},
        "pool_anon_churn": {"new_ns_per_op": 5.4, "legacy_ns_per_op": 17.0,
                            "speedup": 3.1},
        "pool_object_churn": {"new_ns_per_op": 8.0, "legacy_ns_per_op": 35.0,
                              "speedup": 4.4},
        "pagestore_churn": {"new_ns_per_op": 122.0, "legacy_ns_per_op": 226.0,
                            "speedup": 1.85},
    },
}


def run_diff(tmp, baseline, current, env_extra=None):
    bpath = os.path.join(tmp, "baseline.json")
    cpath = os.path.join(tmp, "current.json")
    with open(bpath, "w") as f:
        json.dump(baseline, f)
    with open(cpath, "w") as f:
        json.dump(current, f)
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    return subprocess.run([sys.executable, DIFF, bpath, cpath],
                         capture_output=True, text=True, env=env)


def expect(cond, label, proc):
    if not cond:
        print(f"FAIL: {label}")
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        sys.exit(1)
    print(f"ok: {label}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        # (a) identical run passes.
        p = run_diff(tmp, BASELINE, copy.deepcopy(BASELINE))
        expect(p.returncode == 0, "identical run passes", p)

        # (b) host times inflated by 2x: gate must fire on both a workload
        # wall time and a pooled micro cost, naming them.
        slow = copy.deepcopy(BASELINE)
        slow["workloads"]["uvm"]["map_heavy"]["host_ms"] = 80.0
        slow["micro"]["map_lookup_1000"]["new_ns_per_op"] = 320.0
        p = run_diff(tmp, BASELINE, slow)
        expect(p.returncode == 1, "2x host regression fails", p)
        expect("host regression workloads.uvm.map_heavy.host_ms" in p.stdout,
               "regressed workload named", p)
        expect("host regression micro.map_lookup_1000.new_ns_per_op" in p.stdout,
               "regressed micro named", p)

        # (b') the same doctored run passes when the tolerance is disabled.
        p = run_diff(tmp, BASELINE, slow, {"UVM_HOST_TOLERANCE": "inf"})
        expect(p.returncode == 0, "UVM_HOST_TOLERANCE=inf disables the gate", p)

        # (b'') a slip inside the tolerance band passes (+10% < +25%).
        mild = copy.deepcopy(BASELINE)
        mild["workloads"]["uvm"]["map_heavy"]["host_ms"] = 44.0
        p = run_diff(tmp, BASELINE, mild)
        expect(p.returncode == 0, "+10% host slip tolerated", p)

        # (c) a deterministic counter drift is always fatal.
        drift = copy.deepcopy(BASELINE)
        drift["workloads"]["uvm"]["map_heavy"]["vtime_ns"] = 40868001
        p = run_diff(tmp, BASELINE, drift)
        expect(p.returncode == 1, "deterministic drift fails", p)
        expect("workloads.uvm.map_heavy.vtime_ns" in p.stdout,
               "drifted field named", p)

        # (d) a speedup below its floor is fatal even with the host gate off.
        slowdown = copy.deepcopy(BASELINE)
        slowdown["micro"]["pv_churn"]["speedup"] = 1.1
        p = run_diff(tmp, BASELINE, slowdown, {"UVM_HOST_TOLERANCE": "inf"})
        expect(p.returncode == 1, "speedup below floor fails", p)
        expect("micro.pv_churn.speedup" in p.stdout, "slow micro named", p)

    print("test_diff_bench_host: all cases passed")


if __name__ == "__main__":
    main()
