#!/usr/bin/env python3
"""Compare a fresh BENCH_host.json against the committed baseline.

Field classes:
  - deterministic (workloads.*.* except host_ms): must match the baseline
    exactly — these are virtual-time totals and lookup counters, identical
    on every machine and in --quick and full runs.
  - speedups (micro.*.speedup): checked against a floor, not the baseline
    value, since host timings vary between machines. The headline
    map_lookup_1000 floor is the PR's acceptance target (5x).
  - host times (host_ms, *_ns_per_op): informational only.

Usage: diff_bench_host.py BASELINE CURRENT
"""

import json
import sys

SPEEDUP_FLOORS = {
    "map_lookup_1000": 5.0,
    "map_mutate_1000": 1.5,
    "pagestore_lookup_64k": 2.0,
}


def deterministic(doc):
    out = {}
    for vm, workloads in sorted(doc.get("workloads", {}).items()):
        for name, fields in sorted(workloads.items()):
            for key, value in sorted(fields.items()):
                if key != "host_ms":
                    out[f"workloads.{vm}.{name}.{key}"] = value
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    failures = []

    base_det = deterministic(baseline)
    cur_det = deterministic(current)
    for key in sorted(set(base_det) | set(cur_det)):
        b, c = base_det.get(key), cur_det.get(key)
        if b != c:
            failures.append(f"deterministic field {key}: baseline={b} current={c}")

    for name, floor in SPEEDUP_FLOORS.items():
        got = current.get("micro", {}).get(name, {}).get("speedup")
        if got is None:
            failures.append(f"micro.{name}: missing from current run")
        elif got < floor:
            failures.append(f"micro.{name}.speedup: {got} below floor {floor}")

    if failures:
        print("BENCH_host comparison FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    n = len(base_det)
    print(f"BENCH_host comparison OK: {n} deterministic fields identical, "
          f"{len(SPEEDUP_FLOORS)} speedup floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
