#!/usr/bin/env python3
"""Compare a fresh BENCH_host.json against the committed baseline.

Field classes:
  - deterministic (workloads.*.* except host_ms): must match the baseline
    exactly — these are virtual-time totals and lookup counters, identical
    on every machine and in --quick and full runs.
  - speedups (micro.*.speedup): checked against a floor, not the baseline
    value, since host timings vary between machines. The headline
    map_lookup_1000 floor is the PR's acceptance target (5x).
  - host times (workloads.*.host_ms and micro.*.new_ns_per_op): gated
    against the baseline with a relative tolerance — CI fails when the
    current run is more than UVM_HOST_TOLERANCE (default 0.25, i.e. +25%)
    slower than baseline AND the absolute slip exceeds a small noise floor
    (tiny timings jitter by large ratios). Set UVM_HOST_TOLERANCE=inf to
    disable, e.g. when comparing across different machines.

Usage: diff_bench_host.py BASELINE CURRENT
"""

import json
import os
import sys

SPEEDUP_FLOORS = {
    "map_lookup_1000": 5.0,
    "map_mutate_1000": 2.0,
    "pagestore_lookup_64k": 2.0,
    "pv_churn": 1.5,
    "pool_anon_churn": 1.5,
    "pool_object_churn": 1.5,
    "pagestore_churn": 1.2,
}

# Absolute slack added on top of the relative tolerance: a 2 ns/op micro or
# a 3 ms workload can move 25% on scheduler noise alone.
ABS_FLOOR_NS_PER_OP = 20.0
ABS_FLOOR_HOST_MS = 2.0


def deterministic(doc):
    out = {}
    for vm, workloads in sorted(doc.get("workloads", {}).items()):
        for name, fields in sorted(workloads.items()):
            for key, value in sorted(fields.items()):
                if key != "host_ms":
                    out[f"workloads.{vm}.{name}.{key}"] = value
    return out


def host_times(doc):
    """Gated host timings: workload wall times and pooled-side micro costs."""
    out = {}
    for vm, workloads in sorted(doc.get("workloads", {}).items()):
        for name, fields in sorted(workloads.items()):
            if "host_ms" in fields:
                out[f"workloads.{vm}.{name}.host_ms"] = (
                    float(fields["host_ms"]), ABS_FLOOR_HOST_MS)
    for name, fields in sorted(doc.get("micro", {}).items()):
        if "new_ns_per_op" in fields:
            out[f"micro.{name}.new_ns_per_op"] = (
                float(fields["new_ns_per_op"]), ABS_FLOOR_NS_PER_OP)
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    failures = []

    base_det = deterministic(baseline)
    cur_det = deterministic(current)
    for key in sorted(set(base_det) | set(cur_det)):
        b, c = base_det.get(key), cur_det.get(key)
        if b != c:
            failures.append(f"deterministic field {key}: baseline={b} current={c}")

    for name, floor in SPEEDUP_FLOORS.items():
        got = current.get("micro", {}).get(name, {}).get("speedup")
        if got is None:
            failures.append(f"micro.{name}: missing from current run")
        elif got < floor:
            failures.append(f"micro.{name}.speedup: {got} below floor {floor}")

    tolerance = float(os.environ.get("UVM_HOST_TOLERANCE", "0.25"))
    base_host = host_times(baseline)
    cur_host = host_times(current)
    gated = 0
    for key, (b, abs_floor) in sorted(base_host.items()):
        if key not in cur_host:
            continue  # new fields are only gated once they enter the baseline
        c = cur_host[key][0]
        gated += 1
        if c > b * (1.0 + tolerance) and c - b > abs_floor:
            failures.append(
                f"host regression {key}: baseline={b:.2f} current={c:.2f} "
                f"(+{(c / b - 1.0) * 100.0:.0f}%, tolerance {tolerance * 100.0:.0f}%)")

    if failures:
        print("BENCH_host comparison FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    n = len(base_det)
    print(f"BENCH_host comparison OK: {n} deterministic fields identical, "
          f"{len(SPEEDUP_FLOORS)} speedup floors met, "
          f"{gated} host timings within +{tolerance * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
